//! `bench_serve` — closed-loop load generator against the query
//! service's real TCP socket.
//!
//! Registers two closed-form relations (every key in `0..scale`
//! exactly once, payload = key, so every query's full answer is
//! `max = 2 * (scale - 1)` and the full join is exactly `scale` rows),
//! then:
//!
//! 1. **Anytime demonstration** — one client measures the full-query
//!    latency, then retries with descending deadlines until the server
//!    returns a partial answer; the partial's rows are checked to be a
//!    key-order prefix of the full join's rows, and its coverage is
//!    reported.
//! 2. **Capped demonstration** — a `rows_cap` far below the join's
//!    size shows the streaming cap: the merge stops the moment the cap
//!    is satisfied (coverage < 1 proves it did not run to the end) and
//!    the returned rows are the exact key-order prefix.
//! 3. **Client sweep** — for each client count, that many closed-loop
//!    clients hammer the server for a fixed duration with a mix of
//!    priority classes and occasional deadline-carrying queries.
//!    Reports p50/p99/p999 latency, throughput, shed/rejected/degraded
//!    counts, and mean answer coverage per point. Under
//!    degrade-don't-reject admission the rejected and shed columns are
//!    expected to read zero at every point: overload degrades queries
//!    (tight anytime budget, coverage-stamped partial answer) instead
//!    of turning clients away.
//!
//! Every complete answer is checked against the closed form and every
//! partial against `max <= closed form` — a torn result fails the run.
//! Any transport or protocol error fails the run. `BENCH_10.json` at
//! the repo root records the committed trajectory point.
//!
//! ```text
//! cargo run --release -p mpsm-serve --bin bench_serve
//!     [--addr HOST:PORT] [--scale N] [--threads N] [--in-flight N]
//!     [--queue N] [--duration-ms N] [--seed N] [--quick] [--out PATH]
//! ```
//!
//! Without `--addr` the harness spawns its own server in-process —
//! still over a real TCP socket on `127.0.0.1`. `--quick` shrinks the
//! scale, client counts, and duration for CI smoke runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mpsm_exec::{RunCacheConfig, SchedulerConfig, Session};
use mpsm_serve::protocol::code;
use mpsm_serve::{Client, QueryRequest, Server, ServiceError};

struct Args {
    addr: Option<String>,
    scale: usize,
    threads: usize,
    in_flight: usize,
    queue: usize,
    duration_ms: u64,
    seed: u64,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        scale: 1 << 15,
        threads: 4,
        in_flight: 2,
        queue: 16,
        duration_ms: 1000,
        seed: 42,
        quick: false,
        out: "BENCH_10.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                args.addr = Some(it.next().unwrap_or_else(|| panic!("--addr needs HOST:PORT")))
            }
            "--scale" => args.scale = num(&mut it, "--scale"),
            "--threads" => args.threads = num(&mut it, "--threads"),
            "--in-flight" => args.in_flight = num(&mut it, "--in-flight"),
            "--queue" => args.queue = num(&mut it, "--queue"),
            "--duration-ms" => args.duration_ms = num(&mut it, "--duration-ms") as u64,
            "--seed" => args.seed = num(&mut it, "--seed") as u64,
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| panic!("--out needs a path")),
            other => panic!(
                "unknown flag {other}; supported: --addr --scale --threads --in-flight --queue \
                 --duration-ms --seed --quick --out"
            ),
        }
    }
    if args.quick {
        args.scale /= 8;
        args.duration_ms = args.duration_ms.min(300);
    }
    assert!(args.scale > 64 && args.threads > 0 && args.duration_ms > 0);
    args
}

fn finite(label: &str, v: f64) -> f64 {
    assert!(v.is_finite(), "{label} is not finite: {v}");
    v
}

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 32
    }
}

/// Every key in `0..scale` exactly once (shuffled), payload = key.
fn tuples(scale: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut keys: Vec<u64> = (0..scale as u64).collect();
    let mut next = lcg(seed);
    for i in (1..keys.len()).rev() {
        keys.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    keys.into_iter().map(|k| (k, k)).collect()
}

/// Latency percentile over a sorted sample (nearest-rank on the
/// inclusive index scale).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-sweep-point tallies, shared across that point's client threads.
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    partial: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    torn: AtomicU64,
    protocol_errors: AtomicU64,
    /// Sum of coverage over successful queries, in millionths.
    coverage_ppm: AtomicU64,
}

struct SweepPoint {
    clients: usize,
    queries: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    shed: u64,
    rejected: u64,
    partial_answers: u64,
    /// Server-side count of queries admitted in degraded mode during
    /// this point (delta of the scheduler's lifetime counter).
    degraded: u64,
    mean_coverage: f64,
}

/// One client's closed loop: query until `deadline_wall`, classifying
/// every outcome. Returns this client's latency samples (ms).
fn client_loop(
    addr: &str,
    scale: usize,
    client_idx: usize,
    deadline_wall: Instant,
    tight_deadline_micros: u64,
    tally: &Tally,
) -> Vec<f64> {
    let closed_form = 2 * (scale as u64 - 1);
    let mut latencies = Vec::new();
    let Ok(mut client) = Client::connect(addr) else {
        tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return latencies;
    };
    let mut request = QueryRequest::new("R", "S");
    request.priority = (client_idx % 3) as u8;
    let mut q = 0u64;
    while Instant::now() < deadline_wall {
        // Every 4th query carries a tight SLA, exercising the anytime
        // path (and deadline_missed accounting) under load.
        request.deadline_micros = if q % 4 == 3 { tight_deadline_micros } else { 0 };
        let start = Instant::now();
        match client.query(&request) {
            Ok(reply) => {
                latencies.push(start.elapsed().as_secs_f64() * 1e3);
                tally.ok.fetch_add(1, Ordering::Relaxed);
                tally.coverage_ppm.fetch_add((reply.coverage * 1e6) as u64, Ordering::Relaxed);
                if reply.complete {
                    // Torn-result tripwire: a complete answer must be
                    // the closed form exactly.
                    if reply.max_payload_sum != Some(closed_form) {
                        tally.torn.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    tally.partial.fetch_add(1, Ordering::Relaxed);
                    // A partial covers a prefix: its max can never
                    // exceed the full answer.
                    if reply.max_payload_sum.is_some_and(|m| m > closed_form) {
                        tally.torn.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(ServiceError::Server { code: code::SHED, .. }) => {
                tally.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Server { code: code::REJECTED, .. }) => {
                tally.rejected.fetch_add(1, Ordering::Relaxed);
                // Back off instead of hammering a full queue.
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(_) => {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return latencies;
            }
        }
        q += 1;
    }
    latencies
}

fn sweep_point(addr: &str, args: &Args, clients: usize, tight_deadline_micros: u64) -> SweepPoint {
    let tally = Tally::default();
    let duration = Duration::from_millis(args.duration_ms);
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let deadline_wall = Instant::now() + duration;
        let handles: Vec<_> = (0..clients)
            .map(|idx| {
                let tally = &tally;
                scope.spawn(move || {
                    client_loop(addr, args.scale, idx, deadline_wall, tight_deadline_micros, tally)
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread panicked")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(
        tally.protocol_errors.load(Ordering::Relaxed),
        0,
        "protocol/transport errors at {clients} clients"
    );
    assert_eq!(tally.torn.load(Ordering::Relaxed), 0, "torn results at {clients} clients");
    let ok = tally.ok.load(Ordering::Relaxed);
    assert!(ok > 0, "no queries completed at {clients} clients");
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let label = format!("{clients} clients");
    SweepPoint {
        clients,
        queries: ok,
        qps: finite(&label, ok as f64 / elapsed),
        p50_ms: finite(&label, percentile(&latencies, 50.0)),
        p99_ms: finite(&label, percentile(&latencies, 99.0)),
        p999_ms: finite(&label, percentile(&latencies, 99.9)),
        shed: tally.shed.load(Ordering::Relaxed),
        rejected: tally.rejected.load(Ordering::Relaxed),
        partial_answers: tally.partial.load(Ordering::Relaxed),
        degraded: 0, // filled in by the caller from the server's counter delta
        mean_coverage: finite(
            &label,
            tally.coverage_ppm.load(Ordering::Relaxed) as f64 / 1e6 / ok as f64,
        ),
    }
}

struct AnytimeDemo {
    full_latency_ms: f64,
    deadline_micros: u64,
    coverage: f64,
    partial_rows: usize,
    full_rows: usize,
    prefix_verified: bool,
}

/// Measure the full query, then shrink the deadline until the server
/// degrades to a partial answer; verify the prefix contract over the
/// wire.
fn anytime_demo(addr: &str, scale: usize) -> AnytimeDemo {
    let closed_form = 2 * (scale as u64 - 1);
    let mut client = Client::connect(addr).expect("connect");
    let mut full_req = QueryRequest::new("R", "S");
    full_req.rows_cap = scale as u32;
    // Warm (pays the run-cache misses), then measure.
    let full = client.query(&full_req).expect("full query");
    assert!(full.complete && full.max_payload_sum == Some(closed_form), "full answer wrong");
    let full_rows = full.rows.clone();
    assert_eq!(full_rows.len(), scale, "1:1 join returns exactly |R| rows");
    let start = Instant::now();
    let timed = client.query(&full_req).expect("timed full query");
    let full_latency_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(timed.complete, "unconstrained query must complete");

    // Descend from just under the measured latency until a deadline
    // hit produces a partial. Prefer a partial with nonzero coverage
    // (the merge got to run some blocks) but accept coverage 0 — the
    // prefix contract holds for the empty prefix too, and at a 1 us
    // deadline the query is always expired by the time the
    // coordinator pops it (dispatch alone takes longer), so the
    // descent is guaranteed to terminate with a partial even on a
    // box fast enough to finish the quick-scale merge inside any
    // larger deadline.
    // (deadline_micros, coverage, partial rows) of the best partial seen.
    type DemoPartial = (u64, f64, Vec<(u64, u64, u64)>);
    let mut demo: Option<DemoPartial> = None;
    let mut deadline_micros = (((full_latency_ms * 1e3) * 0.8) as u64).max(1);
    for _ in 0..48 {
        let mut req = full_req.clone();
        req.deadline_micros = deadline_micros;
        match client.query(&req) {
            Ok(reply) if !reply.complete => {
                let better = match &demo {
                    Some((_, best, _)) => reply.coverage > *best || *best >= 1.0,
                    None => true,
                };
                if better || demo.is_none() {
                    demo = Some((deadline_micros, reply.coverage, reply.rows.clone()));
                }
                if reply.coverage > 0.0 {
                    break;
                }
            }
            Ok(_) => {}
            Err(err) => panic!("anytime demo query failed: {err}"),
        }
        if deadline_micros == 1 {
            break;
        }
        deadline_micros = ((deadline_micros * 7) / 10).max(1);
    }
    let (deadline_micros, coverage, partial_rows) =
        demo.expect("no deadline produced a partial answer");
    assert!(
        partial_rows.as_slice() == &full_rows[..partial_rows.len()],
        "partial rows are not a key-order prefix of the full join"
    );
    AnytimeDemo {
        full_latency_ms,
        deadline_micros,
        coverage,
        partial_rows: partial_rows.len(),
        full_rows: full_rows.len(),
        prefix_verified: true,
    }
}

struct CappedDemo {
    rows_cap: usize,
    rows_returned: usize,
    coverage: f64,
    stopped_early: bool,
}

/// A `rows_cap` far below the join's size: the streaming cap stops the
/// merge the moment the cap is satisfied. Coverage < 1 proves the
/// merge did not run to the end, and the rows are checked against the
/// closed form (the first `cap` keys, in order).
fn capped_demo(addr: &str, scale: usize) -> CappedDemo {
    let cap = 64usize.min(scale / 4);
    let mut client = Client::connect(addr).expect("connect");
    let mut req = QueryRequest::new("R", "S");
    req.rows_cap = cap as u32;
    let reply = client.query(&req).expect("capped query");
    assert!(
        reply.complete,
        "a capped stop reports complete: the caller got every row it asked for"
    );
    assert_eq!(reply.rows.len(), cap, "exactly rows_cap rows come back");
    assert!(
        reply.rows == (0..cap as u64).map(|k| (k, k, k)).collect::<Vec<_>>(),
        "capped rows are the key-order prefix of the closed form"
    );
    assert!(
        reply.coverage < 1.0,
        "coverage {} must be < 1: the merge stopped at the cap instead of running to the end",
        reply.coverage
    );
    CappedDemo {
        rows_cap: cap,
        rows_returned: reply.rows.len(),
        coverage: reply.coverage,
        stopped_early: reply.coverage < 1.0,
    }
}

fn main() {
    let args = parse_args();
    // Spawn an in-process server (over a real TCP socket) unless the
    // harness was pointed at an external one.
    let (addr, handle) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let config = SchedulerConfig::new(args.threads)
                .max_in_flight(args.in_flight)
                .queue_capacity(args.queue);
            let session = Session::with_run_cache(config, RunCacheConfig::default());
            let server = Server::bind("127.0.0.1:0", session).expect("bind");
            let handle = server.spawn().expect("spawn accept loop");
            (handle.addr().to_string(), Some(handle))
        }
    };
    eprintln!(
        "bench_serve: server at {addr}, |R| = |S| = {}, duration = {} ms/point, seed = {}",
        args.scale, args.duration_ms, args.seed
    );

    let mut setup = Client::connect(addr.as_str()).expect("connect for setup");
    setup.ping().expect("server alive");
    setup.register("R", tuples(args.scale, args.seed)).expect("register R");
    setup.register("S", tuples(args.scale, args.seed ^ 1)).expect("register S");

    eprintln!("anytime demonstration:");
    let demo = anytime_demo(&addr, args.scale);
    eprintln!(
        "  full = {:.3} ms ({} rows); deadline {} us -> coverage {:.1}% ({} rows), prefix ok",
        demo.full_latency_ms,
        demo.full_rows,
        demo.deadline_micros,
        demo.coverage * 100.0,
        demo.partial_rows
    );
    let tight_deadline_micros = ((demo.full_latency_ms * 1e3) as u64 / 2).max(100);

    eprintln!("rows_cap demonstration:");
    let capped = capped_demo(&addr, args.scale);
    eprintln!(
        "  cap {} -> {} rows, coverage {:.3}% (merge stopped at the cap)",
        capped.rows_cap,
        capped.rows_returned,
        capped.coverage * 100.0
    );

    let mut metrics_client = Client::connect(addr.as_str()).expect("connect for metrics");
    let client_counts: &[usize] = if args.quick { &[2, 8, 32] } else { &[8, 64, 256] };
    let mut points = Vec::new();
    eprintln!("client sweep:");
    for &clients in client_counts {
        let before = metrics_client.metrics().expect("metrics before point");
        let mut point = sweep_point(&addr, &args, clients, tight_deadline_micros);
        let after = metrics_client.metrics().expect("metrics after point");
        point.degraded = after.degraded - before.degraded;
        eprintln!(
            "  {:4} clients: {:8.1} q/s, p50 {:7.3} ms, p99 {:7.3} ms, p999 {:7.3} ms, \
             shed {}, rejected {}, degraded {}, partial {} (mean coverage {:.3})",
            point.clients,
            point.qps,
            point.p50_ms,
            point.p99_ms,
            point.p999_ms,
            point.shed,
            point.rejected,
            point.degraded,
            point.partial_answers,
            point.mean_coverage
        );
        points.push(point);
    }

    let server_metrics =
        Client::connect(addr.as_str()).expect("connect for metrics").metrics().expect("metrics");
    drop(handle);

    let sweep_rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"clients\": {}, \"queries\": {}, \"qps\": {:.3}, \"p50_ms\": {:.4}, \
                 \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, \"shed\": {}, \"rejected\": {}, \
                 \"degraded\": {}, \"partial_answers\": {}, \"mean_coverage\": {:.6}}}",
                p.clients,
                p.queries,
                p.qps,
                p.p50_ms,
                p.p99_ms,
                p.p999_ms,
                p.shed,
                p.rejected,
                p.degraded,
                p.partial_answers,
                p.mean_coverage
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\"scale\": {}, \"pool_threads\": {}, \"in_flight\": {}, \
         \"queue_capacity\": {}, \"duration_ms\": {}, \"seed\": {}, \"quick\": {}, \
         \"external_server\": {}}},\n  \
         \"unit\": \"per-query wall latency in ms over the real TCP socket; coverage is the \
         anytime key-domain fraction\",\n  \"sweep\": [\n{}\n  ],\n  \
         \"anytime\": {{\"full_latency_ms\": {:.4}, \"deadline_micros\": {}, \
         \"coverage\": {:.6}, \"partial_rows\": {}, \"full_rows\": {}, \
         \"prefix_verified\": {}}},\n  \
         \"capped\": {{\"rows_cap\": {}, \"rows_returned\": {}, \"coverage\": {:.6}, \
         \"stopped_early\": {}}},\n  \
         \"server\": {{\"submitted\": {}, \"completed\": {}, \"rejected\": {}, \"shed\": {}, \
         \"deadline_missed\": {}, \"partial_answers\": {}, \"degraded\": {}}}\n}}\n",
        args.scale,
        args.threads,
        args.in_flight,
        args.queue,
        args.duration_ms,
        args.seed,
        args.quick,
        args.addr.is_some(),
        sweep_rows.join(",\n"),
        demo.full_latency_ms,
        demo.deadline_micros,
        demo.coverage,
        demo.partial_rows,
        demo.full_rows,
        demo.prefix_verified,
        capped.rows_cap,
        capped.rows_returned,
        capped.coverage,
        capped.stopped_early,
        server_metrics.submitted,
        server_metrics.completed,
        server_metrics.rejected,
        server_metrics.shed,
        server_metrics.deadline_missed,
        server_metrics.partial_answers,
        server_metrics.degraded,
    );
    assert!(!json.to_ascii_lowercase().contains("nan"), "NaN leaked into the report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {} (protocol errors: 0, torn results: 0)", args.out);
}
