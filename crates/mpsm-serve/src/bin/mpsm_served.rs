//! `mpsm_served` — the query-service daemon: one [`Session`] behind a
//! TCP socket speaking the [`mpsm_serve::protocol`] wire format.
//!
//! ```text
//! cargo run --release -p mpsm-serve --bin mpsm_served
//!     [--addr HOST:PORT] [--threads N] [--in-flight N] [--queue N]
//!     [--min-deadline-micros N] [--drain-timeout-ms N] [--workers N]
//!     [--idle-timeout-ms N] [--read-deadline-ms N]
//! ```
//!
//! Prints `mpsm_served listening on ADDR` once the socket accepts —
//! the readiness line scripts (and CI) wait for. Clients register
//! relations, write deltas, and run queries over the wire; see
//! `bench_serve` for a closed-loop load generator.

use std::time::Duration;

use mpsm_exec::{RunCacheConfig, SchedulerConfig, Session};
use mpsm_serve::{Server, ServerConfig};

struct Args {
    addr: String,
    threads: usize,
    in_flight: usize,
    queue: usize,
    min_deadline_micros: u64,
    drain_timeout_ms: u64,
    workers: usize,
    idle_timeout_ms: u64,
    read_deadline_ms: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        threads: 4,
        in_flight: 2,
        queue: 16,
        min_deadline_micros: 0,
        drain_timeout_ms: 10_000,
        workers: 4,
        idle_timeout_ms: 60_000,
        read_deadline_ms: 10_000,
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => args.addr = it.next().unwrap_or_else(|| panic!("--addr needs HOST:PORT")),
            "--threads" => args.threads = num(&mut it, "--threads"),
            "--in-flight" => args.in_flight = num(&mut it, "--in-flight"),
            "--queue" => args.queue = num(&mut it, "--queue"),
            "--min-deadline-micros" => {
                args.min_deadline_micros = num(&mut it, "--min-deadline-micros") as u64
            }
            "--drain-timeout-ms" => {
                args.drain_timeout_ms = num(&mut it, "--drain-timeout-ms") as u64
            }
            "--workers" => args.workers = num(&mut it, "--workers"),
            "--idle-timeout-ms" => args.idle_timeout_ms = num(&mut it, "--idle-timeout-ms") as u64,
            "--read-deadline-ms" => {
                args.read_deadline_ms = num(&mut it, "--read-deadline-ms") as u64
            }
            other => panic!(
                "unknown flag {other}; supported: --addr --threads --in-flight --queue \
                 --min-deadline-micros --drain-timeout-ms --workers --idle-timeout-ms \
                 --read-deadline-ms"
            ),
        }
    }
    assert!(args.threads > 0 && args.in_flight > 0 && args.workers > 0);
    args
}

fn main() {
    let args = parse_args();
    let config = SchedulerConfig::new(args.threads)
        .max_in_flight(args.in_flight)
        .queue_capacity(args.queue)
        .min_feasible_deadline(Duration::from_micros(args.min_deadline_micros))
        .drain_timeout(Duration::from_millis(args.drain_timeout_ms));
    let session = Session::with_run_cache(config, RunCacheConfig::default());
    let server_config = ServerConfig::default()
        .workers(args.workers)
        .idle_timeout(Duration::from_millis(args.idle_timeout_ms))
        .read_deadline(Duration::from_millis(args.read_deadline_ms));
    let server = Server::bind_with(args.addr.as_str(), session, server_config).expect("bind");
    let addr = server.local_addr().expect("bound address");
    println!("mpsm_served listening on {addr}");
    eprintln!(
        "pool = {} exec threads, {} in flight, queue = {}, deadline floor = {} us, \
         {} connection workers",
        args.threads, args.in_flight, args.queue, args.min_deadline_micros, args.workers
    );
    server.run().expect("accept loop");
}
