//! A small blocking client for the query service, used by the
//! `bench_serve` load harness and the protocol tests.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, DecodeError, Frame, MetricsBody, QueryBody, QueryResultBody,
};

/// What a request can fail with, from the client's point of view.
#[derive(Debug)]
pub enum ServiceError {
    /// The transport failed (or the server closed mid-exchange).
    Io(io::Error),
    /// The server's response did not decode.
    Protocol(DecodeError),
    /// The server answered with an `Error` frame.
    Server {
        /// Stable code from [`crate::protocol::code`].
        code: u16,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a well-formed frame of the wrong type.
    Unexpected(Frame),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "transport: {e}"),
            ServiceError::Protocol(e) => write!(f, "protocol: {e}"),
            ServiceError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ServiceError::Unexpected(frame) => write!(f, "unexpected response: {frame:?}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// A query request, mirroring the wire fields of [`QueryBody`].
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Private-side relation name.
    pub r: String,
    /// Public-side relation name.
    pub s: String,
    /// SLA deadline in microseconds (`0` = none).
    pub deadline_micros: u64,
    /// Admission class: `0` batch, `1` normal, `2` interactive.
    pub priority: u8,
    /// Joined rows to collect (`0` = none).
    pub rows_cap: u32,
}

impl QueryRequest {
    /// A plain no-SLA query over two registered relations.
    pub fn new(r: &str, s: &str) -> Self {
        QueryRequest {
            r: r.to_string(),
            s: s.to_string(),
            deadline_micros: 0,
            priority: 1,
            rows_cap: 0,
        }
    }

    fn body(&self) -> QueryBody {
        QueryBody {
            r: self.r.clone(),
            s: self.s.clone(),
            deadline_micros: self.deadline_micros,
            priority: self.priority,
            rows_cap: self.rows_cap,
        }
    }
}

/// A query's answer. Re-exported body of the `QueryResult` frame.
pub type QueryReply = QueryResultBody;

/// One blocking connection to the service.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    /// Send one frame and read the server's response to it.
    pub fn exchange(&mut self, frame: &Frame) -> Result<Frame, ServiceError> {
        write_frame(&mut self.writer, frame)?;
        match read_frame(&mut self.reader)? {
            Some(Ok(frame)) => Ok(frame),
            Some(Err(err)) => Err(ServiceError::Protocol(err)),
            None => Err(ServiceError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    fn expect(&mut self, frame: &Frame) -> Result<Frame, ServiceError> {
        match self.exchange(frame)? {
            Frame::Error { code, message } => Err(ServiceError::Server { code, message }),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        match self.expect(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(ServiceError::Unexpected(other)),
        }
    }

    /// Register a relation; returns `(rows, version)`.
    pub fn register(
        &mut self,
        name: &str,
        tuples: Vec<(u64, u64)>,
    ) -> Result<(u64, u64), ServiceError> {
        match self.expect(&Frame::Register { name: name.to_string(), tuples })? {
            Frame::Registered { rows, version } => Ok((rows, version)),
            other => Err(ServiceError::Unexpected(other)),
        }
    }

    /// Append tuples to a registered relation; returns the delta
    /// watermark.
    pub fn write(&mut self, name: &str, tuples: Vec<(u64, u64)>) -> Result<u64, ServiceError> {
        match self.expect(&Frame::Write { name: name.to_string(), tuples })? {
            Frame::Written { delta_len } => Ok(delta_len),
            other => Err(ServiceError::Unexpected(other)),
        }
    }

    /// Run a query and wait for its (possibly partial) answer.
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryReply, ServiceError> {
        match self.expect(&Frame::Query(request.body()))? {
            Frame::QueryResult(result) => Ok(result),
            other => Err(ServiceError::Unexpected(other)),
        }
    }

    /// Run a query and return its EXPLAIN text.
    pub fn explain(&mut self, request: &QueryRequest) -> Result<String, ServiceError> {
        match self.expect(&Frame::Explain(request.body()))? {
            Frame::Explained { text } => Ok(text),
            other => Err(ServiceError::Unexpected(other)),
        }
    }

    /// Fetch the scheduler's lifetime counters.
    pub fn metrics(&mut self) -> Result<MetricsBody, ServiceError> {
        match self.expect(&Frame::Metrics)? {
            Frame::MetricsReport(m) => Ok(m),
            other => Err(ServiceError::Unexpected(other)),
        }
    }
}
