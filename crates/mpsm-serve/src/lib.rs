//! The MPSM query service: a long-lived TCP layer over an
//! [`mpsm_exec::Session`].
//!
//! Three pieces:
//!
//! * [`protocol`] — the length-prefixed wire format: `Register`,
//!   `Query`, `Explain`, `Write`, `Ping`, and `Metrics` request frames
//!   with typed responses, plus an `Error` frame carrying a stable
//!   numeric code. Framing survives malformed bodies: a frame that
//!   parses as garbage draws an `Error` response, not a dropped
//!   connection.
//! * [`server`] — the accept loop: one [`mpsm_exec::Session`] (and
//!   therefore one [`mpsm_exec::Scheduler`] with its shared worker
//!   pool) serves every connection, thread-per-connection, with
//!   queries admitted under the scheduler's SLA rules — priority
//!   classes, deadline feasibility, shed-on-overload.
//! * [`client`] — a small blocking client used by the `bench_serve`
//!   load harness and the protocol tests.
//!
//! Deadline-carrying queries execute on the **anytime** path
//! ([`mpsm_core::join::anytime`]): a deadline hit returns the joined
//! rows accumulated so far — always a key-order prefix of the full
//! answer — plus a coverage estimate, in the response frame and on the
//! plan's `Anytime` row. Load shedding therefore degrades answers
//! instead of erroring the client whenever the query got to run at
//! all.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, QueryReply, QueryRequest, ServiceError};
pub use protocol::{DecodeError, Frame};
pub use server::{Server, ServerHandle};
