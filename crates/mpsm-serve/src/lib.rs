//! The MPSM query service: a long-lived TCP layer over an
//! [`mpsm_exec::Session`].
//!
//! Three pieces:
//!
//! * [`protocol`] — the length-prefixed wire format: `Register`,
//!   `Query`, `Explain`, `Write`, `Ping`, and `Metrics` request frames
//!   with typed responses, plus an `Error` frame carrying a stable
//!   numeric code. Framing survives malformed bodies: a frame that
//!   parses as garbage draws an `Error` response, not a dropped
//!   connection.
//! * [`server`] — the multiplexed front-end: one acceptor thread hands
//!   sockets to a fixed pool of connection workers, each driving its
//!   share of nonblocking connections through a readiness loop with
//!   incremental frame reassembly. One [`mpsm_exec::Session`] (and
//!   therefore one [`mpsm_exec::Scheduler`] with its shared worker
//!   pool) serves every connection; queries submit asynchronously and
//!   answer by ticket, so a slow query never stalls its worker.
//! * [`client`] — a small blocking client used by the `bench_serve`
//!   load harness and the protocol tests.
//!
//! Deadline-carrying queries execute on the **anytime** path
//! ([`mpsm_core::join::anytime`]): a deadline hit returns the joined
//! rows accumulated so far — always a key-order prefix of the full
//! answer — plus a coverage estimate (scalar and per key range), in
//! the response frame and on the plan's `Anytime` row. Overload
//! control follows the same philosophy — **degrade, don't reject**: a
//! full queue admits the query anyway under a forced tight anytime
//! budget, so clients see coverage-stamped partial answers under
//! storm, never `REJECTED` errors.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, QueryReply, QueryRequest, ServiceError};
pub use protocol::{DecodeError, Frame};
pub use server::{Server, ServerConfig, ServerHandle};
