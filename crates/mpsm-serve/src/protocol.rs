//! The wire format: length-prefixed frames over a byte stream.
//!
//! Every frame is `u32` little-endian body length, then the body: one
//! tag byte followed by tag-specific fields. Integers are
//! little-endian, `f64` travels as its IEEE-754 bit pattern, strings
//! and sequences carry a `u32` count first. Client tags occupy
//! `0x01..=0x7F`, server tags set the high bit; [`Frame::Error`]
//! (`0xEE`) reports failures with a stable numeric code so clients can
//! react without parsing prose.
//!
//! The framing layer and the body codec fail independently:
//! [`read_raw`] only errors on transport problems (or a length prefix
//! beyond [`MAX_FRAME`], after which the stream cannot be resynced),
//! while [`Frame::decode`] returns [`DecodeError`] for a malformed
//! body. A server can therefore answer garbage with an `Error` frame
//! and keep the connection — the next length prefix is still trustworthy.

use std::io::{self, Read, Write};

/// Hard cap on a frame body, in bytes. A length prefix beyond this is
/// treated as stream corruption (the connection cannot be resynced),
/// not as a request for a giant allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Stable error codes carried by [`Frame::Error`].
pub mod code {
    /// The frame body did not parse.
    pub const MALFORMED: u16 = 1;
    /// A query or write named a relation the server does not know.
    pub const UNKNOWN_RELATION: u16 = 2;
    /// Admission rejected the query: the queue is full and nothing
    /// lower-priority could be shed.
    pub const REJECTED: u16 = 3;
    /// Admission rejected the query: its deadline is below the
    /// server's feasibility floor (or zero).
    pub const INFEASIBLE: u16 = 4;
    /// The query was queued, then evicted by a higher-priority arrival.
    pub const SHED: u16 = 5;
    /// The query panicked inside the engine.
    pub const PANICKED: u16 = 6;
    /// The frame parsed but the server does not serve it (e.g. a
    /// server-tagged frame sent by a client).
    pub const UNSUPPORTED: u16 = 7;
}

/// Why a frame body failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The body ended before the fields it promised.
    Truncated,
    /// The tag byte names no known frame.
    UnknownTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A count field promises more items than the body could hold.
    BadCount(u32),
    /// Fields decoded, but bytes were left over.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame body truncated"),
            DecodeError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            DecodeError::BadUtf8 => write!(f, "string field is not UTF-8"),
            DecodeError::BadCount(n) => write!(f, "count field {n} exceeds the body"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the frame"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// One protocol frame, client- or server-originated.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Liveness probe.
    Ping,
    /// Register (or replace) a relation under `name`.
    Register {
        /// Catalog name.
        name: String,
        /// The relation's `(key, payload)` tuples.
        tuples: Vec<(u64, u64)>,
    },
    /// Run the paper query `max(R.payload + S.payload)` over the two
    /// named relations.
    Query(QueryBody),
    /// Like `Query`, but respond with the executed plan's EXPLAIN text
    /// instead of the result values.
    Explain(QueryBody),
    /// Append tuples to a registered relation's delta log.
    Write {
        /// Catalog name.
        name: String,
        /// Tuples to append.
        tuples: Vec<(u64, u64)>,
    },
    /// Request the scheduler's lifetime counters.
    Metrics,
    /// Server reply to [`Frame::Ping`].
    Pong,
    /// Server reply to [`Frame::Register`].
    Registered {
        /// Rows the relation holds.
        rows: u64,
        /// Catalog version assigned to it.
        version: u64,
    },
    /// Server reply to [`Frame::Query`].
    QueryResult(QueryResultBody),
    /// Server reply to [`Frame::Explain`]: the plan text.
    Explained {
        /// `QueryPlan::explain()` output.
        text: String,
    },
    /// Server reply to [`Frame::Write`].
    Written {
        /// Delta-log length after the append.
        delta_len: u64,
    },
    /// Server reply to [`Frame::Metrics`].
    MetricsReport(MetricsBody),
    /// Server-reported failure (see [`code`]).
    Error {
        /// Stable numeric code from [`code`].
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

/// The query description shared by [`Frame::Query`] and
/// [`Frame::Explain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBody {
    /// Private-side relation name.
    pub r: String,
    /// Public-side relation name.
    pub s: String,
    /// SLA deadline in microseconds; `0` means none. Non-zero routes
    /// the query down the anytime path.
    pub deadline_micros: u64,
    /// Admission class: `0` batch, `1` normal, `2` interactive.
    pub priority: u8,
    /// Collect up to this many joined rows (key order); `0` collects
    /// none.
    pub rows_cap: u32,
}

/// The result values for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResultBody {
    /// `max(R.payload + S.payload)`, `None` if the (covered part of
    /// the) join is empty.
    pub max_payload_sum: Option<u64>,
    /// Tuples entering the join from R.
    pub r_selected: u64,
    /// Tuples entering the join from S.
    pub s_selected: u64,
    /// Whether the merge ran to completion. `false` means a deadline
    /// hit: the values cover a key-order prefix of the join.
    pub complete: bool,
    /// Fraction of the private input merged, in `[0, 1]`.
    pub coverage: f64,
    /// Joined `(key, r_payload, s_payload)` rows, capped by the
    /// request's `rows_cap`.
    pub rows: Vec<(u64, u64, u64)>,
    /// Per-key-range coverage histogram: `(lo, hi, fraction)` per
    /// private run, ascending and disjoint. Tells a client *which*
    /// part of the key space a partial answer covers, not just how
    /// much. Empty when the query never ran the anytime merge.
    pub range_coverage: Vec<(u64, u64, f64)>,
}

/// Scheduler lifetime counters, as served to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsBody {
    /// Queries admitted.
    pub submitted: u64,
    /// Queries finished successfully.
    pub completed: u64,
    /// Queries rejected at submit.
    pub rejected: u64,
    /// Queued queries evicted by higher-priority arrivals.
    pub shed: u64,
    /// Queries that finished past their deadline.
    pub deadline_missed: u64,
    /// Queries that returned partial (coverage < 100%) answers.
    pub partial_answers: u64,
    /// Queries admitted in degraded mode (forced tight anytime budget)
    /// under overload, instead of being rejected.
    pub degraded: u64,
}

const TAG_PING: u8 = 0x01;
const TAG_REGISTER: u8 = 0x02;
const TAG_QUERY: u8 = 0x03;
const TAG_EXPLAIN: u8 = 0x04;
const TAG_WRITE: u8 = 0x05;
const TAG_METRICS: u8 = 0x06;
const TAG_PONG: u8 = 0x81;
const TAG_REGISTERED: u8 = 0x82;
const TAG_QUERY_RESULT: u8 = 0x83;
const TAG_EXPLAINED: u8 = 0x84;
const TAG_WRITTEN: u8 = 0x85;
const TAG_METRICS_REPORT: u8 = 0x86;
const TAG_ERROR: u8 = 0xEE;

/// Byte-level body writer.
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn string(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v.as_bytes());
    }
    fn pairs(&mut self, v: &[(u64, u64)]) {
        self.u32(v.len() as u32);
        for &(a, b) in v {
            self.u64(a);
            self.u64(b);
        }
    }
}

/// Byte-level body reader over a borrowed frame body.
struct Dec<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.body.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.body[self.at..end];
        self.at = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take(2)")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()?;
        let bytes = self.counted(len, 1)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
    fn pairs(&mut self) -> Result<Vec<(u64, u64)>, DecodeError> {
        let n = self.u32()?;
        let bytes = self.counted(n, 16)?;
        Ok(bytes.chunks_exact(16).map(pair_of).collect())
    }
    fn triples(&mut self) -> Result<Vec<(u64, u64, u64)>, DecodeError> {
        let n = self.u32()?;
        let bytes = self.counted(n, 24)?;
        Ok(bytes
            .chunks_exact(24)
            .map(|c| {
                let (a, b) = pair_of(&c[..16]);
                (a, b, u64::from_le_bytes(c[16..24].try_into().expect("chunk of 24")))
            })
            .collect())
    }
    fn ranges(&mut self) -> Result<Vec<(u64, u64, f64)>, DecodeError> {
        let n = self.u32()?;
        let bytes = self.counted(n, 24)?;
        Ok(bytes
            .chunks_exact(24)
            .map(|c| {
                let (lo, hi) = pair_of(&c[..16]);
                (lo, hi, f64::from_bits(u64::from_le_bytes(c[16..24].try_into().expect("chunk"))))
            })
            .collect())
    }
    /// Take `count * item_bytes`, rejecting counts the body cannot
    /// hold *before* allocating (a hostile count must not OOM the
    /// server).
    fn counted(&mut self, count: u32, item_bytes: usize) -> Result<&'a [u8], DecodeError> {
        let total = (count as usize).checked_mul(item_bytes).ok_or(DecodeError::BadCount(count))?;
        if total > self.body.len().saturating_sub(self.at) {
            return Err(DecodeError::BadCount(count));
        }
        self.take(total)
    }
    fn finish(self) -> Result<(), DecodeError> {
        match self.body.len() - self.at {
            0 => Ok(()),
            n => Err(DecodeError::TrailingBytes(n)),
        }
    }
}

fn pair_of(c: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(c[..8].try_into().expect("chunk of 16")),
        u64::from_le_bytes(c[8..16].try_into().expect("chunk of 16")),
    )
}

impl Frame {
    /// Encode the frame body (tag byte included, length prefix not).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        match self {
            Frame::Ping => e.u8(TAG_PING),
            Frame::Register { name, tuples } => {
                e.u8(TAG_REGISTER);
                e.string(name);
                e.pairs(tuples);
            }
            Frame::Query(q) => {
                e.u8(TAG_QUERY);
                encode_query(&mut e, q);
            }
            Frame::Explain(q) => {
                e.u8(TAG_EXPLAIN);
                encode_query(&mut e, q);
            }
            Frame::Write { name, tuples } => {
                e.u8(TAG_WRITE);
                e.string(name);
                e.pairs(tuples);
            }
            Frame::Metrics => e.u8(TAG_METRICS),
            Frame::Pong => e.u8(TAG_PONG),
            Frame::Registered { rows, version } => {
                e.u8(TAG_REGISTERED);
                e.u64(*rows);
                e.u64(*version);
            }
            Frame::QueryResult(r) => {
                e.u8(TAG_QUERY_RESULT);
                e.u8(u8::from(r.max_payload_sum.is_some()));
                e.u64(r.max_payload_sum.unwrap_or(0));
                e.u64(r.r_selected);
                e.u64(r.s_selected);
                e.u8(u8::from(r.complete));
                e.f64(r.coverage);
                e.u32(r.rows.len() as u32);
                for &(k, rp, sp) in &r.rows {
                    e.u64(k);
                    e.u64(rp);
                    e.u64(sp);
                }
                e.u32(r.range_coverage.len() as u32);
                for &(lo, hi, fraction) in &r.range_coverage {
                    e.u64(lo);
                    e.u64(hi);
                    e.f64(fraction);
                }
            }
            Frame::Explained { text } => {
                e.u8(TAG_EXPLAINED);
                e.string(text);
            }
            Frame::Written { delta_len } => {
                e.u8(TAG_WRITTEN);
                e.u64(*delta_len);
            }
            Frame::MetricsReport(m) => {
                e.u8(TAG_METRICS_REPORT);
                for v in [
                    m.submitted,
                    m.completed,
                    m.rejected,
                    m.shed,
                    m.deadline_missed,
                    m.partial_answers,
                    m.degraded,
                ] {
                    e.u64(v);
                }
            }
            Frame::Error { code, message } => {
                e.u8(TAG_ERROR);
                e.u16(*code);
                e.string(message);
            }
        }
        e.0
    }

    /// Decode one frame body (as delimited by the length prefix).
    pub fn decode(body: &[u8]) -> Result<Frame, DecodeError> {
        let mut d = Dec { body, at: 0 };
        let frame = match d.u8()? {
            TAG_PING => Frame::Ping,
            TAG_REGISTER => Frame::Register { name: d.string()?, tuples: d.pairs()? },
            TAG_QUERY => Frame::Query(decode_query(&mut d)?),
            TAG_EXPLAIN => Frame::Explain(decode_query(&mut d)?),
            TAG_WRITE => Frame::Write { name: d.string()?, tuples: d.pairs()? },
            TAG_METRICS => Frame::Metrics,
            TAG_PONG => Frame::Pong,
            TAG_REGISTERED => Frame::Registered { rows: d.u64()?, version: d.u64()? },
            TAG_QUERY_RESULT => {
                let has_max = d.u8()? != 0;
                let max = d.u64()?;
                Frame::QueryResult(QueryResultBody {
                    max_payload_sum: has_max.then_some(max),
                    r_selected: d.u64()?,
                    s_selected: d.u64()?,
                    complete: d.u8()? != 0,
                    coverage: d.f64()?,
                    rows: d.triples()?,
                    range_coverage: d.ranges()?,
                })
            }
            TAG_EXPLAINED => Frame::Explained { text: d.string()? },
            TAG_WRITTEN => Frame::Written { delta_len: d.u64()? },
            TAG_METRICS_REPORT => Frame::MetricsReport(MetricsBody {
                submitted: d.u64()?,
                completed: d.u64()?,
                rejected: d.u64()?,
                shed: d.u64()?,
                deadline_missed: d.u64()?,
                partial_answers: d.u64()?,
                degraded: d.u64()?,
            }),
            TAG_ERROR => Frame::Error { code: d.u16()?, message: d.string()? },
            tag => return Err(DecodeError::UnknownTag(tag)),
        };
        d.finish()?;
        Ok(frame)
    }

    /// Whether this frame carries a server tag (high bit set).
    pub fn is_server_frame(&self) -> bool {
        self.encode()[0] & 0x80 != 0
    }
}

fn encode_query(e: &mut Enc, q: &QueryBody) {
    e.string(&q.r);
    e.string(&q.s);
    e.u64(q.deadline_micros);
    e.u8(q.priority);
    e.u32(q.rows_cap);
}

fn decode_query(d: &mut Dec<'_>) -> Result<QueryBody, DecodeError> {
    Ok(QueryBody {
        r: d.string()?,
        s: d.string()?,
        deadline_micros: d.u64()?,
        priority: d.u8()?,
        rows_cap: d.u32()?,
    })
}

/// Write one frame: length prefix, then the encoded body.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let body = frame.encode();
    assert!(body.len() <= MAX_FRAME as usize, "frame exceeds MAX_FRAME");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one raw frame body. `Ok(None)` means the peer closed the
/// stream cleanly at a frame boundary. A length prefix beyond
/// [`MAX_FRAME`] is reported as [`io::ErrorKind::InvalidData`] — the
/// stream cannot be resynced past it.
pub fn read_raw(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Read and decode one frame. Transport failures surface as
/// `Err(io::Error)`, a clean close as `Ok(None)`, and a malformed body
/// as `Ok(Some(Err(DecodeError)))` — the caller can answer the latter
/// and keep reading.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Result<Frame, DecodeError>>> {
    Ok(read_raw(r)?.map(|body| Frame::decode(&body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let body = frame.encode();
        assert_eq!(Frame::decode(&body).expect("frame decodes"), frame);
    }

    fn sample_query() -> QueryBody {
        QueryBody {
            r: "R".to_string(),
            s: "S".to_string(),
            deadline_micros: 1_500,
            priority: 2,
            rows_cap: 10,
        }
    }

    #[test]
    fn every_frame_type_roundtrips() {
        roundtrip(Frame::Ping);
        roundtrip(Frame::Register { name: "R".to_string(), tuples: vec![(1, 2), (3, 4)] });
        roundtrip(Frame::Query(sample_query()));
        roundtrip(Frame::Explain(sample_query()));
        roundtrip(Frame::Write { name: "S".to_string(), tuples: vec![] });
        roundtrip(Frame::Metrics);
        roundtrip(Frame::Pong);
        roundtrip(Frame::Registered { rows: 100, version: 3 });
        roundtrip(Frame::QueryResult(QueryResultBody {
            max_payload_sum: Some(42),
            r_selected: 7,
            s_selected: 9,
            complete: false,
            coverage: 0.625,
            rows: vec![(1, 2, 3), (4, 5, 6)],
            range_coverage: vec![(0, 99, 1.0), (100, 199, 0.25)],
        }));
        roundtrip(Frame::QueryResult(QueryResultBody {
            max_payload_sum: None,
            r_selected: 0,
            s_selected: 0,
            complete: true,
            coverage: 1.0,
            rows: vec![],
            range_coverage: vec![],
        }));
        roundtrip(Frame::Explained { text: "Queue [wait = 0.1 ms]\n".to_string() });
        roundtrip(Frame::Written { delta_len: 12 });
        roundtrip(Frame::MetricsReport(MetricsBody {
            submitted: 1,
            completed: 2,
            rejected: 3,
            shed: 4,
            deadline_missed: 5,
            partial_answers: 6,
            degraded: 7,
        }));
        roundtrip(Frame::Error { code: code::MALFORMED, message: "nope".to_string() });
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        assert_eq!(Frame::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(Frame::decode(&[0x42]), Err(DecodeError::UnknownTag(0x42)));
        // Register with a string length promising more than the body.
        let mut body = vec![0x02];
        body.extend_from_slice(&100u32.to_le_bytes());
        body.push(b'R');
        assert_eq!(Frame::decode(&body), Err(DecodeError::BadCount(100)));
        // A hostile tuple count must not allocate: u32::MAX entries.
        let mut body = vec![0x02];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'R');
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&body), Err(DecodeError::BadCount(u32::MAX)));
        // Invalid UTF-8 in a name.
        let mut body = vec![0x02];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(0xFF);
        body.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(Frame::decode(&body), Err(DecodeError::BadUtf8));
        // Trailing bytes after a complete frame.
        let mut body = Frame::Ping.encode();
        body.push(0);
        assert_eq!(Frame::decode(&body), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn stream_io_roundtrips_and_reports_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Ping).expect("write");
        write_frame(&mut buf, &Frame::Metrics).expect("write");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("io"), Some(Ok(Frame::Ping)));
        assert_eq!(read_frame(&mut r).expect("io"), Some(Ok(Frame::Metrics)));
        assert_eq!(read_frame(&mut r).expect("io"), None, "clean close at a boundary");
    }

    #[test]
    fn oversized_length_prefix_is_a_transport_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_raw(&mut &buf[..]).expect_err("oversized frame");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn server_tags_set_the_high_bit() {
        assert!(!Frame::Ping.is_server_frame());
        assert!(!Frame::Query(sample_query()).is_server_frame());
        assert!(Frame::Pong.is_server_frame());
        assert!(Frame::Error { code: 1, message: String::new() }.is_server_frame());
    }
}
