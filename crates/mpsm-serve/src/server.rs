//! The accept loop: one [`Session`] serving many TCP connections.
//!
//! Thread-per-connection over a shared `Arc<Session>`: every
//! connection's queries funnel into the one scheduler, so its
//! admission rules — priority classes, deadline feasibility,
//! shed-on-overload — arbitrate *between clients*, which is the whole
//! point of serving from a single engine. Responses are written back
//! on the same connection in request order (the protocol is strictly
//! request/response; pipelining is the client's affair).
//!
//! A malformed frame body draws a [`Frame::Error`] with
//! [`code::MALFORMED`] and the connection survives; only transport
//! errors (including an oversized length prefix, after which the
//! stream cannot be resynced) end a connection.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mpsm_core::Tuple;
use mpsm_exec::{Priority, QueryError, QuerySpec, Relation, Session, SubmitError};

use crate::protocol::{
    code, read_frame, write_frame, Frame, MetricsBody, QueryBody, QueryResultBody,
};

/// A bound-but-not-yet-serving query service.
pub struct Server {
    session: Arc<Session>,
    listener: TcpListener,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// fresh handle to `session`.
    pub fn bind(addr: impl ToSocketAddrs, session: Session) -> io::Result<Server> {
        Ok(Server { session: Arc::new(session), listener: TcpListener::bind(addr)? })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve on the calling thread until the process exits. The server
    /// binary's entry point.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop)
    }

    /// Serve on a background thread; the returned handle shuts the
    /// accept loop down when asked (or dropped).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let _ = self.accept_loop(&accept_stop);
        });
        Ok(ServerHandle { addr, stop, thread: Some(thread) })
    }

    fn accept_loop(&self, stop: &AtomicBool) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let session = Arc::clone(&self.session);
            // Connection threads are detached: they exit when their
            // client closes. Shutdown stops *accepting*; draining the
            // engine is the Session/Scheduler drop contract (which is
            // itself bounded by the scheduler's drain timeout).
            std::thread::spawn(move || {
                let _ = serve_connection(&session, stream);
            });
        }
        Ok(())
    }
}

/// Handle to a [`Server::spawn`]ed accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread.
    /// Established connections keep being served until their clients
    /// close.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Serve one connection until the peer closes or the transport fails.
fn serve_connection(session: &Session, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(frame) = read_frame(&mut reader)? {
        let response = match frame {
            Ok(frame) => dispatch(session, frame),
            Err(err) => Frame::Error { code: code::MALFORMED, message: err.to_string() },
        };
        write_frame(&mut writer, &response)?;
    }
    Ok(())
}

/// Execute one request frame against the session.
fn dispatch(session: &Session, frame: Frame) -> Frame {
    match frame {
        Frame::Ping => Frame::Pong,
        Frame::Register { name, tuples } => {
            let tuples = tuples.into_iter().map(|(k, p)| Tuple::new(k, p)).collect();
            let handle = session.register(Relation::new(&name, tuples));
            Frame::Registered { rows: handle.len() as u64, version: handle.version() }
        }
        Frame::Write { name, tuples } => {
            match session.append(&name, tuples.into_iter().map(|(k, p)| Tuple::new(k, p))) {
                Ok(watermark) => Frame::Written { delta_len: watermark as u64 },
                Err(err) => Frame::Error { code: code::UNKNOWN_RELATION, message: err.to_string() },
            }
        }
        Frame::Query(q) => match run_query(session, &q) {
            Ok(result) => Frame::QueryResult(result),
            Err(err) => err,
        },
        Frame::Explain(q) => match explain_query(session, &q) {
            Ok(text) => Frame::Explained { text },
            Err(err) => err,
        },
        Frame::Metrics => {
            let m = session.scheduler().metrics();
            Frame::MetricsReport(MetricsBody {
                submitted: m.submitted,
                completed: m.completed,
                rejected: m.rejected,
                shed: m.shed,
                deadline_missed: m.deadline_missed,
                partial_answers: m.partial_answers,
            })
        }
        // Server-tagged frames are well-formed but not servable.
        other => Frame::Error {
            code: code::UNSUPPORTED,
            message: format!("server cannot serve frame {other:?}"),
        },
    }
}

/// Build the [`QuerySpec`] a [`QueryBody`] describes, or the `Error`
/// frame explaining why it cannot run.
fn spec_of(session: &Session, q: &QueryBody) -> Result<QuerySpec, Frame> {
    let resolve = |name: &str| {
        session.relation(name).ok_or_else(|| Frame::Error {
            code: code::UNKNOWN_RELATION,
            message: format!("no relation named {name:?} is registered"),
        })
    };
    let r = resolve(&q.r)?;
    let s = resolve(&q.s)?;
    let mut spec = QuerySpec::join(&r, &s).priority(match q.priority {
        0 => Priority::Batch,
        2 => Priority::Interactive,
        _ => Priority::Normal,
    });
    if q.deadline_micros > 0 {
        spec = spec.deadline(Duration::from_micros(q.deadline_micros));
    }
    if q.rows_cap > 0 {
        spec = spec.collect_rows(q.rows_cap as usize);
    }
    Ok(spec)
}

fn error_of(err: QueryError) -> Frame {
    let (code, message) = match &err {
        QueryError::Rejected(SubmitError::DeadlineInfeasible { .. }) => {
            (code::INFEASIBLE, err.to_string())
        }
        QueryError::Rejected(_) => (code::REJECTED, err.to_string()),
        QueryError::Shed => (code::SHED, err.to_string()),
        QueryError::Panicked(_) => (code::PANICKED, err.to_string()),
    };
    Frame::Error { code, message }
}

fn run_query(session: &Session, q: &QueryBody) -> Result<QueryResultBody, Frame> {
    let out = session.query(spec_of(session, q)?).map_err(error_of)?;
    let result = out.result;
    // A query that never entered the anytime path (no deadline, no row
    // cap) is complete by construction.
    let (complete, coverage) = match &result.plan.anytime {
        Some(a) => (a.complete, a.coverage),
        None => (true, 1.0),
    };
    Ok(QueryResultBody {
        max_payload_sum: result.max_payload_sum,
        r_selected: result.r_selected as u64,
        s_selected: result.s_selected as u64,
        complete,
        coverage,
        rows: result.rows.unwrap_or_default(),
    })
}

fn explain_query(session: &Session, q: &QueryBody) -> Result<String, Frame> {
    let out = session.query(spec_of(session, q)?).map_err(error_of)?;
    Ok(out.result.plan.explain())
}
