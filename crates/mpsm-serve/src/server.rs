//! The service front-end: one [`Session`] serving many multiplexed
//! TCP connections from a fixed pool of connection workers.
//!
//! A single acceptor thread hands sockets to `ServerConfig::workers`
//! connection workers; each worker drives its share of connections
//! through a readiness loop over nonblocking sockets. Per connection
//! the worker keeps a read buffer (incremental frame reassembly — a
//! frame may arrive in any number of TCP segments), a write buffer
//! (partial writes are resumed, never block the worker), and a FIFO of
//! pending replies. Cheap requests — `Ping`, `Register`, `Write`,
//! `Metrics` — are answered inline; `Query` and `Explain` are
//! submitted to the engine asynchronously and their tickets polled, so
//! a slow query on one connection never stalls the worker's other
//! connections. Replies always leave in request order (the protocol is
//! strictly request/response per connection; pipelining is the
//! client's affair).
//!
//! Every connection's queries funnel into the one scheduler, so its
//! admission rules — priority classes, deadline feasibility,
//! degrade-don't-reject overload control — arbitrate *between
//! clients*, which is the whole point of serving from a single engine.
//!
//! A malformed frame body draws a [`Frame::Error`] with
//! [`code::MALFORMED`] and the connection survives; only transport
//! errors (including an oversized length prefix, after which the
//! stream cannot be resynced) end a connection. Two reapers guard the
//! worker pool: connections idle past `idle_timeout` are closed, and a
//! connection stuck mid-frame past `read_deadline` (a stalled or
//! half-dead client) is closed rather than holding reassembly state
//! forever.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mpsm_core::Tuple;
use mpsm_exec::{
    PaperQueryResult, Priority, QueryError, QuerySpec, QueryTicket, Relation, Session, SubmitError,
};

use crate::protocol::{code, Frame, MetricsBody, QueryBody, QueryResultBody, MAX_FRAME};

/// Tuning knobs for the connection-worker pool.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection workers. Each drives its share of connections; the
    /// engine's parallelism is the scheduler's affair, so a handful is
    /// plenty even for hundreds of clients.
    pub workers: usize,
    /// Close a connection with no traffic and no replies in flight for
    /// this long.
    pub idle_timeout: Duration,
    /// Close a connection stuck mid-frame (bytes of an incomplete
    /// frame buffered, nothing new arriving) for this long.
    pub read_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            idle_timeout: Duration::from_secs(60),
            read_deadline: Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    /// Set the connection-worker count (min 1).
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one connection worker");
        self.workers = n;
        self
    }

    /// Set the idle-connection timeout.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Set the mid-frame read deadline.
    pub fn read_deadline(mut self, deadline: Duration) -> Self {
        self.read_deadline = deadline;
        self
    }
}

/// A bound-but-not-yet-serving query service.
pub struct Server {
    shared: Arc<ServerShared>,
    listener: TcpListener,
}

/// State shared by the acceptor and the connection workers.
struct ServerShared {
    session: Arc<Session>,
    config: ServerConfig,
    /// Accepted sockets awaiting adoption by a worker.
    intake: Mutex<VecDeque<TcpStream>>,
    stop: AtomicBool,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// fresh handle to `session`, with the default worker-pool config.
    pub fn bind(addr: impl ToSocketAddrs, session: Session) -> io::Result<Server> {
        Server::bind_with(addr, session, ServerConfig::default())
    }

    /// [`Server::bind`] with an explicit worker-pool config.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        session: Session,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server {
            shared: Arc::new(ServerShared {
                session: Arc::new(session),
                config,
                intake: Mutex::new(VecDeque::new()),
                stop: AtomicBool::new(false),
            }),
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve on the calling thread until the process exits: spawn the
    /// worker pool, then run the accept loop inline. The server
    /// binary's entry point.
    pub fn run(self) -> io::Result<()> {
        let _workers = spawn_workers(&self.shared);
        accept_loop(&self.listener, &self.shared)
    }

    /// Serve on background threads; the returned handle shuts the pool
    /// down when asked (or dropped).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let mut threads = spawn_workers(&self.shared);
        let listener = self.listener;
        let acceptor_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            let _ = accept_loop(&listener, &acceptor_shared);
        }));
        Ok(ServerHandle { addr, shared, threads })
    }
}

fn spawn_workers(shared: &Arc<ServerShared>) -> Vec<JoinHandle<()>> {
    (0..shared.config.workers)
        .map(|_| {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect()
}

fn accept_loop(listener: &TcpListener, shared: &ServerShared) -> io::Result<()> {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        stream.set_nodelay(true).ok();
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        shared.intake.lock().expect("intake poisoned").push_back(stream);
    }
    Ok(())
}

/// Handle to a [`Server::spawn`]ed service.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every connection, and join the pool.
    /// Queries already inside the engine drain under the Session drop
    /// contract (bounded by the scheduler's drain timeout).
    pub fn shutdown(mut self) {
        self.stop_serving();
    }

    fn stop_serving(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_serving();
    }
}

/// A reply owed to the client, in request order. Queries and explains
/// ride engine tickets; everything else is ready the moment it is
/// enqueued.
enum PendingReply {
    Ready(Frame),
    Query(QueryTicket),
    Explain(QueryTicket),
}

/// One multiplexed connection's state inside a worker.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet framed (incremental reassembly).
    read_buf: Vec<u8>,
    /// Encoded replies not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Drained prefix of `write_buf`.
    write_at: usize,
    /// Replies owed, FIFO.
    pending: VecDeque<PendingReply>,
    /// Last moment bytes moved or a reply resolved.
    last_activity: Instant,
    /// When the currently-incomplete frame started arriving.
    read_started: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_at: 0,
            pending: VecDeque::new(),
            last_activity: Instant::now(),
            read_started: None,
        }
    }
}

/// One poll outcome.
enum Poll {
    /// Something moved (bytes, frames, or replies).
    Progress,
    /// Nothing to do right now.
    Idle,
    /// The connection is done (clean close, transport error, or
    /// reaped); drop it.
    Close,
}

fn worker_loop(shared: &ServerShared) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let mut progress = false;
        // Adopt one new connection per pass: cheap, and spreads a
        // connect burst across the pool as every worker passes by.
        if let Some(stream) = shared.intake.lock().expect("intake poisoned").pop_front() {
            conns.push(Conn::new(stream));
            progress = true;
        }
        conns.retain_mut(|conn| match poll_conn(shared, conn) {
            Poll::Progress => {
                progress = true;
                true
            }
            Poll::Idle => true,
            Poll::Close => false,
        });
        if !progress {
            // Nothing moved anywhere: sleep briefly instead of
            // spinning. Short enough that a new request adds ~100µs of
            // latency at worst, long enough to keep an idle pool off
            // the CPUs.
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Drive one connection as far as it will go without blocking:
/// ingest bytes, reassemble and serve frames, resolve finished query
/// tickets, flush replies, and reap if stalled or idle.
fn poll_conn(shared: &ServerShared, conn: &mut Conn) -> Poll {
    let mut progress = false;

    // Ingest: read until the socket would block (bounded per poll so
    // one firehose connection cannot starve its worker siblings).
    let mut chunk = [0u8; 16 * 1024];
    for _ in 0..8 {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Poll::Close,
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Poll::Close,
        }
    }

    // Reassemble: serve every complete frame in the buffer.
    let mut consumed = 0;
    while conn.read_buf.len() - consumed >= 4 {
        let header: [u8; 4] =
            conn.read_buf[consumed..consumed + 4].try_into().expect("4-byte slice");
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME {
            // The stream cannot be resynced past a bogus length.
            return Poll::Close;
        }
        let end = consumed + 4 + len as usize;
        if conn.read_buf.len() < end {
            break;
        }
        let body = &conn.read_buf[consumed + 4..end];
        let reply = match Frame::decode(body) {
            Ok(frame) => serve_frame(shared, frame),
            Err(err) => PendingReply::Ready(Frame::Error {
                code: code::MALFORMED,
                message: err.to_string(),
            }),
        };
        conn.pending.push_back(reply);
        consumed = end;
        progress = true;
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }
    // Clock the current incomplete frame from its first bytes; a
    // client trickling one byte at a time must not evade the read
    // deadline by counting as "active".
    conn.read_started =
        if conn.read_buf.is_empty() { None } else { conn.read_started.or(Some(Instant::now())) };

    // Resolve: move finished replies, in FIFO order, into the write
    // buffer. A ticket still running blocks the replies behind it (the
    // protocol orders responses per connection) but never the worker.
    while let Some(front) = conn.pending.front() {
        let frame = match front {
            PendingReply::Ready(_) => {
                let Some(PendingReply::Ready(frame)) = conn.pending.pop_front() else {
                    unreachable!("front was Ready")
                };
                frame
            }
            PendingReply::Query(ticket) => match ticket.try_result() {
                Some(outcome) => {
                    conn.pending.pop_front();
                    match outcome {
                        Ok(out) => Frame::QueryResult(reply_of(out.result)),
                        Err(err) => error_of(err),
                    }
                }
                None => break,
            },
            PendingReply::Explain(ticket) => match ticket.try_result() {
                Some(outcome) => {
                    conn.pending.pop_front();
                    match outcome {
                        Ok(out) => Frame::Explained { text: out.result.plan.explain() },
                        Err(err) => error_of(err),
                    }
                }
                None => break,
            },
        };
        let body = frame.encode();
        debug_assert!(body.len() <= MAX_FRAME as usize, "reply exceeds MAX_FRAME");
        conn.write_buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        conn.write_buf.extend_from_slice(&body);
        progress = true;
    }

    // Flush: hand the socket as much of the write buffer as it takes.
    while conn.write_at < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_at..]) {
            Ok(0) => return Poll::Close,
            Ok(n) => {
                conn.write_at += n;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Poll::Close,
        }
    }
    if conn.write_at == conn.write_buf.len() && conn.write_at > 0 {
        conn.write_buf.clear();
        conn.write_at = 0;
    }

    // Reap a connection stuck mid-frame past the deadline (stalled or
    // trickling) — reassembly state must not live forever.
    if let Some(started) = conn.read_started {
        if started.elapsed() > shared.config.read_deadline {
            return Poll::Close;
        }
    }
    if progress {
        conn.last_activity = Instant::now();
        return Poll::Progress;
    }
    // Reap a connection with no traffic and nothing owed.
    if conn.pending.is_empty()
        && conn.write_buf.is_empty()
        && conn.last_activity.elapsed() > shared.config.idle_timeout
    {
        return Poll::Close;
    }
    Poll::Idle
}

/// Serve one request frame: cheap catalog/metrics ops answer inline,
/// queries and explains go to the engine and answer by ticket.
fn serve_frame(shared: &ServerShared, frame: Frame) -> PendingReply {
    let session = &shared.session;
    let ready = |frame| PendingReply::Ready(frame);
    match frame {
        Frame::Ping => ready(Frame::Pong),
        Frame::Register { name, tuples } => {
            let tuples = tuples.into_iter().map(|(k, p)| Tuple::new(k, p)).collect();
            let handle = session.register(Relation::new(&name, tuples));
            ready(Frame::Registered { rows: handle.len() as u64, version: handle.version() })
        }
        Frame::Write { name, tuples } => {
            ready(match session.append(&name, tuples.into_iter().map(|(k, p)| Tuple::new(k, p))) {
                Ok(watermark) => Frame::Written { delta_len: watermark as u64 },
                Err(err) => Frame::Error { code: code::UNKNOWN_RELATION, message: err.to_string() },
            })
        }
        Frame::Query(q) => match submit(session, &q) {
            Ok(ticket) => PendingReply::Query(ticket),
            Err(err) => ready(err),
        },
        Frame::Explain(q) => match submit(session, &q) {
            Ok(ticket) => PendingReply::Explain(ticket),
            Err(err) => ready(err),
        },
        Frame::Metrics => {
            let m = session.scheduler().metrics();
            ready(Frame::MetricsReport(MetricsBody {
                submitted: m.submitted,
                completed: m.completed,
                rejected: m.rejected,
                shed: m.shed,
                deadline_missed: m.deadline_missed,
                partial_answers: m.partial_answers,
                degraded: m.degraded,
            }))
        }
        // Server-tagged frames are well-formed but not servable.
        other => ready(Frame::Error {
            code: code::UNSUPPORTED,
            message: format!("server cannot serve frame {other:?}"),
        }),
    }
}

/// Build and submit the [`QuerySpec`] a [`QueryBody`] describes, or
/// the `Error` frame explaining why it cannot run.
fn submit(session: &Session, q: &QueryBody) -> Result<QueryTicket, Frame> {
    let resolve = |name: &str| {
        session.relation(name).ok_or_else(|| Frame::Error {
            code: code::UNKNOWN_RELATION,
            message: format!("no relation named {name:?} is registered"),
        })
    };
    let r = resolve(&q.r)?;
    let s = resolve(&q.s)?;
    let mut spec = QuerySpec::join(&r, &s).priority(match q.priority {
        0 => Priority::Batch,
        2 => Priority::Interactive,
        _ => Priority::Normal,
    });
    if q.deadline_micros > 0 {
        spec = spec.deadline(Duration::from_micros(q.deadline_micros));
    }
    if q.rows_cap > 0 {
        spec = spec.collect_rows(q.rows_cap as usize);
    }
    session.submit(spec).map_err(|err| error_of(QueryError::Rejected(err)))
}

fn error_of(err: QueryError) -> Frame {
    let (code, message) = match &err {
        QueryError::Rejected(SubmitError::DeadlineInfeasible { .. }) => {
            (code::INFEASIBLE, err.to_string())
        }
        QueryError::Rejected(_) => (code::REJECTED, err.to_string()),
        QueryError::Shed => (code::SHED, err.to_string()),
        QueryError::Panicked(_) => (code::PANICKED, err.to_string()),
    };
    Frame::Error { code, message }
}

/// Shape a finished query for the wire. A query that never entered
/// the anytime path (no deadline, no row cap) is complete by
/// construction; a `capped` stop is reported complete too — the
/// caller got every row it asked for.
fn reply_of(result: PaperQueryResult) -> QueryResultBody {
    let (complete, coverage, range_coverage) = match &result.plan.anytime {
        Some(a) => (
            a.complete || a.capped,
            a.coverage,
            a.ranges.iter().map(|kr| (kr.lo, kr.hi, kr.fraction)).collect(),
        ),
        None => (true, 1.0, Vec::new()),
    };
    QueryResultBody {
        max_payload_sum: result.max_payload_sum,
        r_selected: result.r_selected as u64,
        s_selected: result.s_selected as u64,
        complete,
        coverage,
        rows: result.rows.unwrap_or_default(),
        range_coverage,
    }
}
