//! Pluggable disk backends.
//!
//! A [`DiskBackend`] stores and retrieves opaque page images addressed by
//! `(run, page)`. Three implementations:
//!
//! * [`MemBackend`] — pages live in RAM; read/write costs are *accounted*
//!   against a simulated latency + bandwidth model. This is the default
//!   for reproducible experiments (see the substitution note in the crate
//!   docs).
//! * [`FileBackend`] — one file per run under a directory; real I/O.
//! * [`FaultyBackend`] — decorator that injects failures for tests.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::run_store::RunId;
use crate::Result;

/// Abstract page-granular storage device.
pub trait DiskBackend: Send + Sync {
    /// Persist `bytes` as page `page` of run `run`. Pages of one run are
    /// written in increasing page order by a single writer.
    fn write_page(&self, run: RunId, page: u32, bytes: &[u8]) -> Result<()>;

    /// Read back a page image previously written.
    fn read_page(&self, run: RunId, page: u32) -> Result<Vec<u8>>;

    /// Total bytes written so far (for experiment reporting).
    fn bytes_written(&self) -> u64;

    /// Total bytes read so far.
    fn bytes_read(&self) -> u64;

    /// Simulated I/O time charged so far, in nanoseconds (0 for real
    /// backends, where wall-clock time is the measurement).
    fn simulated_io_ns(&self) -> u64 {
        0
    }
}

/// Simulated-disk parameters for [`MemBackend`].
#[derive(Debug, Clone)]
pub struct SimDiskProfile {
    /// Fixed cost per page operation (seek + command overhead), ns.
    pub latency_ns: u64,
    /// Streaming throughput in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl SimDiskProfile {
    /// A single commodity HDD: 5 ms seek-equivalent, 150 MB/s.
    pub fn single_hdd() -> Self {
        SimDiskProfile { latency_ns: 5_000_000, bandwidth_bytes_per_sec: 150_000_000 }
    }

    /// A striped array as the paper requires for multi-core D-MPSM
    /// ("a very large number of disks"): 0.1 ms, 4 GB/s.
    pub fn disk_array() -> Self {
        SimDiskProfile { latency_ns: 100_000, bandwidth_bytes_per_sec: 4_000_000_000 }
    }

    /// Cost of transferring `bytes`, in ns.
    pub fn io_ns(&self, bytes: usize) -> u64 {
        self.latency_ns
            + (bytes as u128 * 1_000_000_000u128 / self.bandwidth_bytes_per_sec as u128) as u64
    }
}

/// In-memory backend with simulated I/O accounting.
pub struct MemBackend {
    pages: Mutex<HashMap<(RunId, u32), Vec<u8>>>,
    profile: SimDiskProfile,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    sim_ns: AtomicU64,
}

impl MemBackend {
    /// Backend with the given simulated-disk profile.
    pub fn new(profile: SimDiskProfile) -> Self {
        MemBackend {
            pages: Mutex::new(HashMap::new()),
            profile,
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            sim_ns: AtomicU64::new(0),
        }
    }

    /// Backend modeling the paper's striped disk array.
    pub fn disk_array() -> Self {
        Self::new(SimDiskProfile::disk_array())
    }
}

impl Default for MemBackend {
    fn default() -> Self {
        Self::disk_array()
    }
}

impl DiskBackend for MemBackend {
    fn write_page(&self, run: RunId, page: u32, bytes: &[u8]) -> Result<()> {
        self.bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.sim_ns.fetch_add(self.profile.io_ns(bytes.len()), Ordering::Relaxed);
        self.pages.lock().insert((run, page), bytes.to_vec());
        Ok(())
    }

    fn read_page(&self, run: RunId, page: u32) -> Result<Vec<u8>> {
        let pages = self.pages.lock();
        let bytes = pages.get(&(run, page)).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("page {page} of run {run:?} was never written"),
            )
        })?;
        self.bytes_read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.sim_ns.fetch_add(self.profile.io_ns(bytes.len()), Ordering::Relaxed);
        Ok(bytes.clone())
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    fn simulated_io_ns(&self) -> u64 {
        self.sim_ns.load(Ordering::Relaxed)
    }
}

/// Per-run file handle plus the page offset table `(offset, len)`.
type RunFile = (File, Vec<(u64, u32)>);

/// File-per-run backend doing real I/O under `dir`.
///
/// Page sizes may vary per page (the last page of a run is short), so an
/// in-memory offset table per run is kept alongside the files.
pub struct FileBackend {
    dir: PathBuf,
    runs: Mutex<HashMap<RunId, RunFile>>,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl FileBackend {
    /// Create a backend writing run files into `dir` (created if absent).
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileBackend {
            dir,
            runs: Mutex::new(HashMap::new()),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    fn run_path(&self, run: RunId) -> PathBuf {
        self.dir.join(format!("run-{:04}.bin", run.0))
    }
}

impl DiskBackend for FileBackend {
    fn write_page(&self, run: RunId, page: u32, bytes: &[u8]) -> Result<()> {
        let mut runs = self.runs.lock();
        let entry = match runs.entry(run) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let file = OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .read(true)
                    .write(true)
                    .open(self.run_path(run))?;
                v.insert((file, Vec::new()))
            }
        };
        let (file, offsets) = entry;
        assert_eq!(
            page as usize,
            offsets.len(),
            "run pages must be written in order (run {run:?}, page {page})"
        );
        let offset = file.seek(SeekFrom::End(0))?;
        file.write_all(bytes)?;
        offsets.push((offset, bytes.len() as u32));
        self.bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn read_page(&self, run: RunId, page: u32) -> Result<Vec<u8>> {
        let mut runs = self.runs.lock();
        let (file, offsets) = runs.get_mut(&run).ok_or(crate::StorageError::UnknownRun(run))?;
        let &(offset, len) =
            offsets.get(page as usize).ok_or(crate::StorageError::PageOutOfBounds {
                run,
                page,
                pages: offsets.len() as u32,
            })?;
        let mut buf = vec![0u8; len as usize];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        Ok(buf)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        // Best-effort cleanup of the run files this backend created.
        for run in self.runs.lock().keys() {
            let _ = std::fs::remove_file(self.run_path(*run));
        }
    }
}

/// Failure-injecting decorator for tests: fails every read whose global
/// ordinal is in `fail_reads`.
pub struct FaultyBackend<B> {
    inner: B,
    read_ordinal: AtomicU64,
    fail_reads: Vec<u64>,
}

impl<B: DiskBackend> FaultyBackend<B> {
    /// Wrap `inner`, failing the reads whose 0-based ordinal appears in
    /// `fail_reads`.
    pub fn new(inner: B, fail_reads: Vec<u64>) -> Self {
        FaultyBackend { inner, read_ordinal: AtomicU64::new(0), fail_reads }
    }
}

impl<B: DiskBackend> DiskBackend for FaultyBackend<B> {
    fn write_page(&self, run: RunId, page: u32, bytes: &[u8]) -> Result<()> {
        self.inner.write_page(run, page, bytes)
    }

    fn read_page(&self, run: RunId, page: u32) -> Result<Vec<u8>> {
        let ordinal = self.read_ordinal.fetch_add(1, Ordering::Relaxed);
        if self.fail_reads.contains(&ordinal) {
            return Err(std::io::Error::other(format!("injected fault on read #{ordinal}")).into());
        }
        self.inner.read_page(run, page)
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }

    fn simulated_io_ns(&self) -> u64 {
        self.inner.simulated_io_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn DiskBackend) {
        backend.write_page(RunId(0), 0, b"hello").unwrap();
        backend.write_page(RunId(0), 1, b"world!").unwrap();
        backend.write_page(RunId(1), 0, b"other run").unwrap();
        assert_eq!(backend.read_page(RunId(0), 0).unwrap(), b"hello");
        assert_eq!(backend.read_page(RunId(0), 1).unwrap(), b"world!");
        assert_eq!(backend.read_page(RunId(1), 0).unwrap(), b"other run");
        assert_eq!(backend.bytes_written(), 5 + 6 + 9);
        assert_eq!(backend.bytes_read(), 5 + 6 + 9);
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::disk_array());
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mpsm-storage-test-{}", std::process::id()));
        roundtrip(&FileBackend::new(&dir).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_backend_missing_page_errors() {
        let b = MemBackend::disk_array();
        assert!(b.read_page(RunId(9), 0).is_err());
    }

    #[test]
    fn file_backend_out_of_order_write_panics() {
        let dir = std::env::temp_dir().join(format!("mpsm-storage-ooo-{}", std::process::id()));
        let b = FileBackend::new(&dir).unwrap();
        b.write_page(RunId(0), 0, b"x").unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = b.write_page(RunId(0), 5, b"y");
        }));
        assert!(result.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_disk_charges_latency_and_bandwidth() {
        let p = SimDiskProfile { latency_ns: 100, bandwidth_bytes_per_sec: 1_000_000_000 };
        // 1 GB/s → 1 byte per ns.
        assert_eq!(p.io_ns(1000), 100 + 1000);
        let b = MemBackend::new(p);
        b.write_page(RunId(0), 0, &[0u8; 1000]).unwrap();
        assert_eq!(b.simulated_io_ns(), 1100);
        b.read_page(RunId(0), 0).unwrap();
        assert_eq!(b.simulated_io_ns(), 2200);
    }

    #[test]
    fn single_hdd_is_slower_than_array() {
        assert!(
            SimDiskProfile::single_hdd().io_ns(1 << 20)
                > SimDiskProfile::disk_array().io_ns(1 << 20)
        );
    }

    #[test]
    fn faulty_backend_fails_selected_reads() {
        let b = FaultyBackend::new(MemBackend::disk_array(), vec![1]);
        b.write_page(RunId(0), 0, b"data").unwrap();
        assert!(b.read_page(RunId(0), 0).is_ok()); // read #0
        assert!(b.read_page(RunId(0), 0).is_err()); // read #1: injected
        assert!(b.read_page(RunId(0), 0).is_ok()); // read #2
    }
}
