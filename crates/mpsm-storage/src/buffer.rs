//! Budgeted buffer pool realizing the Figure 4 page lifecycle.
//!
//! Pages enter the pool either on demand (a worker needs them *now* —
//! ideally rare, because the prefetcher should be ahead) or via
//! [`BufferPool::prefetch`]. Pages leave when the prefetcher releases
//! everything below the slowest worker's key, or when the budget forces
//! eviction of idle pages. The pool tracks a resident-page high-water
//! mark so experiments can verify that D-MPSM really runs within its RAM
//! budget (experiment E10).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::DiskBackend;
use crate::page_index::IndexEntry;
use crate::record::Record;
use crate::run_store::{RunId, RunStore};
use crate::Result;

/// Counters describing pool behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Demand reads satisfied from the pool.
    pub hits: u64,
    /// Demand reads that had to go to the backend.
    pub misses: u64,
    /// Pages loaded ahead of demand.
    pub prefetches: u64,
    /// Pages dropped because the slowest worker passed them.
    pub releases: u64,
    /// Pages dropped by budget pressure.
    pub evictions: u64,
    /// Maximum resident pages observed.
    pub high_water_pages: u64,
}

struct PoolInner<R> {
    pages: HashMap<(RunId, u32), Arc<Vec<R>>>,
    arrival: VecDeque<(RunId, u32)>,
    stats: BufferStats,
}

impl<R> PoolInner<R> {
    fn note_resident(&mut self) {
        self.stats.high_water_pages = self.stats.high_water_pages.max(self.pages.len() as u64);
    }
}

/// Shared, budgeted page cache over a [`RunStore`].
pub struct BufferPool<B: DiskBackend, R: Record> {
    store: Arc<RunStore<B>>,
    budget_pages: usize,
    inner: Mutex<PoolInner<R>>,
}

impl<B: DiskBackend, R: Record> BufferPool<B, R> {
    /// Create a pool over `store` holding at most `budget_pages` pages
    /// (evicting idle pages beyond that; pages still referenced by
    /// readers are never dropped from under them thanks to `Arc`).
    pub fn new(store: Arc<RunStore<B>>, budget_pages: usize) -> Self {
        assert!(budget_pages > 0, "buffer budget must be positive");
        BufferPool {
            store,
            budget_pages,
            inner: Mutex::new(PoolInner {
                pages: HashMap::new(),
                arrival: VecDeque::new(),
                stats: BufferStats::default(),
            }),
        }
    }

    /// The RAM budget, in pages.
    pub fn budget_pages(&self) -> usize {
        self.budget_pages
    }

    /// The underlying run store.
    pub fn store(&self) -> &RunStore<B> {
        &self.store
    }

    /// Demand-read a page (hit or miss); the returned `Arc` keeps the
    /// page alive regardless of pool eviction.
    pub fn get(&self, run: RunId, page: u32) -> Result<Arc<Vec<R>>> {
        {
            let mut inner = self.inner.lock();
            if let Some(p) = inner.pages.get(&(run, page)) {
                let p = Arc::clone(p);
                inner.stats.hits += 1;
                return Ok(p);
            }
            inner.stats.misses += 1;
        }
        // Read without holding the lock; concurrent duplicate loads of
        // the same page are benign (last insert wins).
        let data = Arc::new(self.store.read_page::<R>(run, page)?);
        let mut inner = self.inner.lock();
        inner.pages.insert((run, page), Arc::clone(&data));
        inner.arrival.push_back((run, page));
        inner.note_resident();
        self.enforce_budget(&mut inner);
        Ok(data)
    }

    /// Load a page ahead of demand if it is not already resident.
    pub fn prefetch(&self, run: RunId, page: u32) -> Result<()> {
        {
            let inner = self.inner.lock();
            if inner.pages.contains_key(&(run, page)) {
                return Ok(());
            }
        }
        let data = Arc::new(self.store.read_page::<R>(run, page)?);
        let mut inner = self.inner.lock();
        if inner.pages.insert((run, page), data).is_none() {
            inner.arrival.push_back((run, page));
            inner.stats.prefetches += 1;
        }
        inner.note_resident();
        self.enforce_budget(&mut inner);
        Ok(())
    }

    /// Drop the given pages (already passed by every worker — Figure 4,
    /// green). Pages still referenced by a reader stay alive through
    /// their `Arc` but leave the pool immediately.
    pub fn release<'a>(&self, entries: impl IntoIterator<Item = &'a IndexEntry>) {
        let mut inner = self.inner.lock();
        for e in entries {
            if inner.pages.remove(&(e.run, e.page)).is_some() {
                inner.stats.releases += 1;
            }
        }
        let PoolInner { pages, arrival, .. } = &mut *inner;
        arrival.retain(|k| pages.contains_key(k));
    }

    /// Whether a page is currently resident (for tests and audits).
    pub fn is_resident(&self, run: RunId, page: u32) -> bool {
        self.inner.lock().pages.contains_key(&(run, page))
    }

    /// Current resident page count.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    fn enforce_budget(&self, inner: &mut PoolInner<R>) {
        while inner.pages.len() > self.budget_pages {
            // Evict the oldest idle page; pages still referenced by a
            // reader (strong_count > 1) are skipped.
            let Some(pos) = inner
                .arrival
                .iter()
                .position(|k| inner.pages.get(k).is_some_and(|p| Arc::strong_count(p) == 1))
            else {
                // Everything is in use: tolerate the overshoot (it is
                // recorded in the high-water mark).
                break;
            };
            let key = inner.arrival.remove(pos).expect("position just found");
            inner.pages.remove(&key);
            inner.stats.evictions += 1;
        }
        let PoolInner { pages, arrival, .. } = &mut *inner;
        arrival.retain(|k| pages.contains_key(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::page_index::PageIndex;
    use crate::record::KvRecord;

    fn setup(
        pages: u64,
        budget: usize,
    ) -> (Arc<RunStore<MemBackend>>, BufferPool<MemBackend, KvRecord>) {
        let store = Arc::new(RunStore::new(MemBackend::disk_array(), 4));
        let recs: Vec<KvRecord> = (0..pages * 4).map(|i| KvRecord::new(i, i)).collect();
        store.store_run(&recs).unwrap();
        let pool = BufferPool::new(Arc::clone(&store), budget);
        (store, pool)
    }

    #[test]
    fn get_caches_pages() {
        let (_s, pool) = setup(4, 8);
        let a = pool.get(RunId(0), 0).unwrap();
        let b = pool.get(RunId(0), 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let st = pool.stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.hits, 1);
    }

    #[test]
    fn budget_evicts_idle_pages() {
        let (_s, pool) = setup(6, 2);
        for p in 0..6 {
            let page = pool.get(RunId(0), p).unwrap();
            drop(page); // page becomes idle immediately
        }
        assert!(pool.resident_pages() <= 2);
        let st = pool.stats();
        assert_eq!(st.evictions, 4);
        assert!(st.high_water_pages <= 3);
    }

    #[test]
    fn pinned_pages_survive_budget_pressure() {
        let (_s, pool) = setup(6, 2);
        let pinned: Vec<_> = (0..4).map(|p| pool.get(RunId(0), p).unwrap()).collect();
        assert_eq!(pool.resident_pages(), 4, "all pages referenced, none evictable");
        // The pinned pages still hold their data.
        assert_eq!(pinned[0][0].key, 0);
        drop(pinned);
        // New traffic now triggers eviction down to budget.
        let _ = pool.get(RunId(0), 5).unwrap();
        assert!(pool.resident_pages() <= 2);
    }

    #[test]
    fn prefetch_counts_separately() {
        let (_s, pool) = setup(4, 8);
        pool.prefetch(RunId(0), 1).unwrap();
        pool.prefetch(RunId(0), 1).unwrap(); // already resident: no-op
        let _ = pool.get(RunId(0), 1).unwrap();
        let st = pool.stats();
        assert_eq!(st.prefetches, 1);
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 0);
    }

    #[test]
    fn release_drops_passed_pages() {
        let (store, pool) = setup(4, 8);
        for p in 0..4 {
            pool.prefetch(RunId(0), p).unwrap();
        }
        let index = PageIndex::build(&store.all_metas());
        // Slowest worker at key 8 → pages with max_key < 8 (pages 0..2) die.
        pool.release(index.releasable(8));
        assert!(!pool.is_resident(RunId(0), 0));
        assert!(!pool.is_resident(RunId(0), 1));
        assert!(pool.is_resident(RunId(0), 2));
        assert_eq!(pool.stats().releases, 2);
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        let (_s, pool) = setup(4, 8);
        for p in 0..4 {
            pool.prefetch(RunId(0), p).unwrap();
        }
        assert_eq!(pool.stats().high_water_pages, 4);
        let index = PageIndex::build(&pool.store().all_metas());
        pool.release(index.releasable(u64::MAX));
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.stats().high_water_pages, 4, "hwm is a peak, not current");
    }

    #[test]
    fn eviction_is_fifo_over_idle_pages() {
        let (_s, pool) = setup(4, 2);
        for p in 0..3 {
            drop(pool.get(RunId(0), p).unwrap());
        }
        // Budget 2, three arrivals: the oldest idle page (0) must be the
        // one evicted; the two youngest stay.
        assert!(!pool.is_resident(RunId(0), 0), "oldest page evicted first");
        assert!(pool.is_resident(RunId(0), 1));
        assert!(pool.is_resident(RunId(0), 2));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn prefetch_path_enforces_budget_too() {
        let (_s, pool) = setup(6, 2);
        for p in 0..6 {
            pool.prefetch(RunId(0), p).unwrap();
        }
        assert!(pool.resident_pages() <= 2, "prefetch must not overshoot the budget");
        let st = pool.stats();
        assert_eq!(st.prefetches, 6);
        assert_eq!(st.evictions, 4);
    }

    #[test]
    fn fifo_skips_pinned_victims() {
        let (_s, pool) = setup(4, 2);
        let pinned = pool.get(RunId(0), 0).unwrap(); // oldest, but referenced
        drop(pool.get(RunId(0), 1).unwrap());
        drop(pool.get(RunId(0), 2).unwrap());
        // Page 0 is the FIFO head but pinned: page 1 must be the victim.
        assert!(pool.is_resident(RunId(0), 0), "pinned page must not be evicted");
        assert!(!pool.is_resident(RunId(0), 1), "oldest idle page is the victim");
        assert!(pool.is_resident(RunId(0), 2));
        assert_eq!(pinned[0].key, 0);
    }

    #[test]
    fn release_of_nonresident_pages_is_noop() {
        let (store, pool) = setup(4, 8);
        let index = PageIndex::build(&store.all_metas());
        pool.release(index.releasable(u64::MAX)); // nothing resident yet
        assert_eq!(pool.stats().releases, 0);
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn concurrent_demand_reads_stay_coherent() {
        let (_s, pool) = setup(8, 4);
        let pool = Arc::new(pool);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for round in 0..50u64 {
                        let page = ((t + round) % 8) as u32;
                        let data = pool.get(RunId(0), page).unwrap();
                        assert_eq!(data[0].key, page as u64 * 4, "page content corrupted");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let st = pool.stats();
        assert_eq!(st.hits + st.misses, 200);
        // Pinned pages may push the pool past its budget transiently; the
        // overshoot is bounded by the number of concurrent readers.
        assert!(pool.resident_pages() <= 4 + 4, "overshoot beyond pinned readers");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let store = Arc::new(RunStore::new(MemBackend::disk_array(), 4));
        let _: BufferPool<MemBackend, KvRecord> = BufferPool::new(store, 0);
    }
}
