//! Disk substrate for the memory-constrained D-MPSM join (paper §3.1).
//!
//! D-MPSM processes sorted runs that are too large for RAM: runs are
//! spooled to disk during run generation, and during the join phase the
//! workers move *synchronously through the key domain* so that
//!
//! * already-processed pages can be **released** from RAM (Figure 4,
//!   green),
//! * soon-to-be-processed pages are **prefetched** asynchronously
//!   (Figure 4, yellow),
//! * only the currently active window is resident (Figure 4, white).
//!
//! The ordering information comes from a [`page_index::PageIndex`]: pairs
//! `⟨v_ij, S_i⟩` where `v_ij` is the first (minimal) join key on the
//! `j`-th page of run `S_i`, sorted by key — read-only, hence shared
//! without synchronization, exactly as in the paper.
//!
//! ## Substitution note
//!
//! The paper used physical disks ("a sufficiently large I/O bandwidth,
//! i.e., a very large number of disks, is required"). This crate offers
//! two interchangeable [`backend::DiskBackend`]s: a real file-backed one
//! and an in-memory one with *simulated* latency/bandwidth accounting, so
//! the I/O-bound regime can be studied deterministically inside a
//! container. The windowed page lifecycle — the algorithmic content of
//! §3.1 — is identical for both.

#![warn(missing_docs)]

pub mod backend;
pub mod buffer;
pub mod page_index;
pub mod prefetch;
pub mod record;
pub mod run_store;

pub use backend::{DiskBackend, FaultyBackend, FileBackend, MemBackend};
pub use buffer::{BufferPool, BufferStats};
pub use page_index::{IndexEntry, PageIndex};
pub use prefetch::{Prefetcher, Progress};
pub use record::Record;
pub use run_store::{RunId, RunMeta, RunReader, RunStore, RunWriter};

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (file backend or injected fault).
    Io(std::io::Error),
    /// A page was requested that the run does not contain.
    PageOutOfBounds {
        /// Offending run.
        run: RunId,
        /// Requested page number.
        page: u32,
        /// Pages the run actually has.
        pages: u32,
    },
    /// A run id was used that the store does not know.
    UnknownRun(RunId),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::PageOutOfBounds { run, page, pages } => {
                write!(f, "page {page} out of bounds for run {run:?} with {pages} pages")
            }
            StorageError::UnknownRun(run) => write!(f, "unknown run {run:?}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
