//! The global page index of Figure 4.
//!
//! The index contains one entry per stored page: `⟨v_ij, S_i, j⟩` where
//! `v_ij` is the first (minimal) join key on the `j`-th page of run
//! `S_i`, sorted ascending by `v_ij`. Prefetcher and workers process the
//! input in this order, moving synchronously through the key domain.
//! The structure is built once after run generation and then accessed
//! read-only — "the common page index structure does not require any
//! synchronization" (paper §3.1).

use crate::run_store::{RunId, RunMeta};

/// One page's entry in the global index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// First (minimal) key on the page — `v_ij`.
    pub min_key: u64,
    /// Last (maximal) key on the page; the page is dead once every worker
    /// has passed this key.
    pub max_key: u64,
    /// The run the page belongs to.
    pub run: RunId,
    /// Page number within the run.
    pub page: u32,
}

/// Key-ordered index over all pages of a set of runs.
#[derive(Debug, Clone, Default)]
pub struct PageIndex {
    entries: Vec<IndexEntry>,
}

impl PageIndex {
    /// Build the index from run metadata (any order), sorting entries by
    /// `min_key` and breaking ties by run id then page number so the
    /// order is deterministic.
    pub fn build(metas: &[RunMeta]) -> Self {
        let mut entries = Vec::with_capacity(metas.iter().map(|m| m.pages() as usize).sum());
        for meta in metas {
            for page in 0..meta.pages() {
                entries.push(IndexEntry {
                    min_key: meta.min_keys[page as usize],
                    max_key: meta.max_keys[page as usize],
                    run: meta.id,
                    page,
                });
            }
        }
        entries.sort_unstable_by_key(|e| (e.min_key, e.run, e.page));
        PageIndex { entries }
    }

    /// All entries in key order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Number of indexed pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Position of the first entry whose `min_key` is `> key` — the
    /// prefetch frontier for a worker currently processing `key`.
    pub fn frontier(&self, key: u64) -> usize {
        self.entries.partition_point(|e| e.min_key <= key)
    }

    /// Entries whose pages are entirely below `key`, i.e. releasable once
    /// the *slowest* worker has reached `key` (Figure 4, green).
    pub fn releasable(&self, key: u64) -> impl Iterator<Item = &IndexEntry> {
        self.entries.iter().filter(move |e| e.max_key < key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u32, min_keys: Vec<u64>, max_keys: Vec<u64>) -> RunMeta {
        let pages = min_keys.len() as u64;
        RunMeta { id: RunId(id), len: pages * 4, page_records: 4, min_keys, max_keys }
    }

    #[test]
    fn entries_are_key_ordered_across_runs() {
        // Mirrors the paper's example: v11 ≤ v41 ≤ v21 ≤ v12 ≤ v31 ...
        let metas = vec![
            meta(1, vec![10, 40], vec![39, 80]),
            meta(2, vec![30], vec![90]),
            meta(3, vec![50], vec![70]),
            meta(4, vec![20, 60], vec![55, 99]),
        ];
        let idx = PageIndex::build(&metas);
        let keys: Vec<u64> = idx.entries().iter().map(|e| e.min_key).collect();
        assert_eq!(keys, vec![10, 20, 30, 40, 50, 60]);
        assert_eq!(idx.entries()[1].run, RunId(4));
    }

    #[test]
    fn ties_break_deterministically() {
        let metas = vec![meta(2, vec![5], vec![9]), meta(1, vec![5], vec![7])];
        let idx = PageIndex::build(&metas);
        assert_eq!(idx.entries()[0].run, RunId(1));
        assert_eq!(idx.entries()[1].run, RunId(2));
    }

    #[test]
    fn frontier_partitions_by_min_key() {
        let metas = vec![meta(0, vec![10, 20, 30], vec![19, 29, 39])];
        let idx = PageIndex::build(&metas);
        assert_eq!(idx.frontier(5), 0);
        assert_eq!(idx.frontier(10), 1);
        assert_eq!(idx.frontier(25), 2);
        assert_eq!(idx.frontier(1000), 3);
    }

    #[test]
    fn releasable_requires_max_key_passed() {
        let metas = vec![meta(0, vec![10, 20], vec![19, 29])];
        let idx = PageIndex::build(&metas);
        assert_eq!(idx.releasable(15).count(), 0); // page 0 still active
        assert_eq!(idx.releasable(20).count(), 1); // page 0 done
        assert_eq!(idx.releasable(30).count(), 2);
    }

    #[test]
    fn empty_index() {
        let idx = PageIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.frontier(0), 0);
    }
}
