//! Asynchronous prefetcher driving the Figure 4 window.
//!
//! Workers publish the join key they are currently processing through a
//! [`Progress`] board (one cache-line-padded atomic per worker — no
//! locks, commandment C3). A background [`Prefetcher`] thread
//!
//! * computes the slowest worker's key `m`,
//! * **releases** every page whose `max_key < m` (green in Figure 4),
//! * **prefetches** pages whose `min_key ≤ m + lookahead` (yellow),
//!
//! walking the read-only page index in key order exactly like the
//! workers do.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::backend::DiskBackend;
use crate::buffer::BufferPool;
use crate::page_index::PageIndex;
use crate::record::Record;

/// Shared progress board: the current join key of each worker.
#[derive(Debug)]
pub struct Progress {
    keys: Vec<AtomicU64>,
}

impl Progress {
    /// A board for `workers` workers, all starting at key 0.
    pub fn new(workers: usize) -> Self {
        Progress { keys: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.keys.len()
    }

    /// Publish that worker `w` is now processing `key`.
    pub fn update(&self, w: usize, key: u64) {
        self.keys[w].store(key, Ordering::Release);
    }

    /// Mark worker `w` finished (it no longer holds back releases).
    pub fn finish(&self, w: usize) {
        self.keys[w].store(u64::MAX, Ordering::Release);
    }

    /// The slowest worker's key (`u64::MAX` once all workers finished).
    pub fn min_key(&self) -> u64 {
        self.keys.iter().map(|k| k.load(Ordering::Acquire)).min().unwrap_or(u64::MAX)
    }
}

/// Handle to the background prefetch thread; stops and joins on drop.
pub struct Prefetcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn a prefetcher over `pool`, walking `index` and following
    /// `progress`. `lookahead` is in key units: pages whose `min_key`
    /// lies within `[min, min + lookahead]` are loaded ahead of demand.
    pub fn spawn<B, R>(
        pool: Arc<BufferPool<B, R>>,
        index: Arc<PageIndex>,
        progress: Arc<Progress>,
        lookahead: u64,
        poll: Duration,
    ) -> Self
    where
        B: DiskBackend + 'static,
        R: Record,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mpsm-prefetcher".into())
            .spawn(move || {
                let mut next_entry = 0usize;
                let mut release_cursor = 0usize;
                while !stop_flag.load(Ordering::Acquire) {
                    let m = progress.min_key();
                    // Release pages entirely below the slowest worker.
                    // The index is min_key-ordered; max_keys of a run are
                    // also non-decreasing, but across runs they are not,
                    // so scan a bounded window from the release cursor.
                    let frontier = index.frontier(m);
                    if frontier > release_cursor {
                        pool.release(
                            index.entries()[release_cursor..frontier]
                                .iter()
                                .filter(|e| e.max_key < m),
                        );
                        // Only advance past entries that are certainly
                        // dead; keep straddling pages in the window.
                        while release_cursor < frontier
                            && index.entries()[release_cursor].max_key < m
                        {
                            release_cursor += 1;
                        }
                    }
                    // Prefetch the lookahead window.
                    let horizon = m.saturating_add(lookahead);
                    while next_entry < index.len() && index.entries()[next_entry].min_key <= horizon {
                        let e = index.entries()[next_entry];
                        if pool.prefetch(e.run, e.page).is_err() {
                            // Backend fault: leave the page to demand
                            // loading, which will surface the error to
                            // the worker that actually needs it.
                        }
                        next_entry += 1;
                    }
                    if m == u64::MAX {
                        break; // all workers done
                    }
                    std::thread::sleep(poll);
                }
            })
            .expect("failed to spawn prefetcher thread");
        Prefetcher { stop, handle: Some(handle) }
    }

    /// Request the thread to stop and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::record::KvRecord;
    use crate::run_store::{RunId, RunStore};

    fn setup(pages: u64) -> (Arc<RunStore<MemBackend>>, Arc<PageIndex>) {
        let store = Arc::new(RunStore::new(MemBackend::disk_array(), 4));
        let recs: Vec<KvRecord> = (0..pages * 4).map(|i| KvRecord::new(i, i)).collect();
        store.store_run(&recs).unwrap();
        let index = Arc::new(PageIndex::build(&store.all_metas()));
        (store, index)
    }

    #[test]
    fn progress_tracks_minimum() {
        let p = Progress::new(3);
        p.update(0, 10);
        p.update(1, 5);
        p.update(2, 20);
        assert_eq!(p.min_key(), 5);
        p.finish(1);
        assert_eq!(p.min_key(), 10);
        p.finish(0);
        p.finish(2);
        assert_eq!(p.min_key(), u64::MAX);
    }

    #[test]
    fn prefetcher_loads_ahead_and_releases_behind() {
        let (store, index) = setup(8);
        let pool = Arc::new(BufferPool::<_, KvRecord>::new(Arc::clone(&store), 64));
        let progress = Arc::new(Progress::new(1));
        let pf = Prefetcher::spawn(
            Arc::clone(&pool),
            Arc::clone(&index),
            Arc::clone(&progress),
            8, // two pages of lookahead (4 keys per page)
            Duration::from_micros(100),
        );
        // Wait for the initial window to load.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !pool.is_resident(RunId(0), 1) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(pool.is_resident(RunId(0), 0), "initial page prefetched");
        assert!(pool.is_resident(RunId(0), 1), "lookahead page prefetched");

        // Worker advances past page 0 (keys 0..=3).
        progress.update(0, 10);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.is_resident(RunId(0), 0) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!pool.is_resident(RunId(0), 0), "passed page released");

        progress.finish(0);
        pf.stop();
        let st = pool.stats();
        assert!(st.prefetches > 0);
        assert!(st.releases > 0);
    }

    #[test]
    fn prefetcher_terminates_when_all_workers_finish() {
        let (store, index) = setup(4);
        let pool = Arc::new(BufferPool::<_, KvRecord>::new(store, 64));
        let progress = Arc::new(Progress::new(2));
        let pf = Prefetcher::spawn(pool, index, Arc::clone(&progress), 4, Duration::from_micros(50));
        progress.finish(0);
        progress.finish(1);
        // Drop joins the thread; the loop must have exited on its own.
        pf.stop();
    }

    #[test]
    fn empty_progress_board_is_finished() {
        let p = Progress::new(0);
        assert_eq!(p.workers(), 1, "board always tracks at least one slot");
    }
}
