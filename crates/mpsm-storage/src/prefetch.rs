//! Asynchronous prefetcher driving the Figure 4 window.
//!
//! Workers publish the join key they are currently processing through a
//! [`Progress`] board (one cache-line-padded atomic per worker — no
//! locks, commandment C3). A background [`Prefetcher`] thread
//!
//! * computes the slowest worker's key `m`,
//! * **releases** every page whose `max_key < m` (green in Figure 4),
//! * **prefetches** pages whose `min_key ≤ m + lookahead` (yellow),
//!
//! walking the read-only page index in key order exactly like the
//! workers do.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::backend::DiskBackend;
use crate::buffer::BufferPool;
use crate::page_index::PageIndex;
use crate::record::Record;

/// Shared progress board: the current join key of each worker.
#[derive(Debug)]
pub struct Progress {
    keys: Vec<AtomicU64>,
}

impl Progress {
    /// A board for `workers` workers, all starting at key 0.
    pub fn new(workers: usize) -> Self {
        Progress { keys: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.keys.len()
    }

    /// Publish that worker `w` is now processing `key`.
    pub fn update(&self, w: usize, key: u64) {
        self.keys[w].store(key, Ordering::Release);
    }

    /// Mark worker `w` finished (it no longer holds back releases).
    pub fn finish(&self, w: usize) {
        self.keys[w].store(u64::MAX, Ordering::Release);
    }

    /// The slowest worker's key (`u64::MAX` once all workers finished).
    pub fn min_key(&self) -> u64 {
        self.keys.iter().map(|k| k.load(Ordering::Acquire)).min().unwrap_or(u64::MAX)
    }
}

/// Handle to the background prefetch thread; stops and joins on drop.
pub struct Prefetcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn a prefetcher over `pool`, walking `index` and following
    /// `progress`. `lookahead` is in key units: pages whose `min_key`
    /// lies within `[min, min + lookahead]` are loaded ahead of demand.
    pub fn spawn<B, R>(
        pool: Arc<BufferPool<B, R>>,
        index: Arc<PageIndex>,
        progress: Arc<Progress>,
        lookahead: u64,
        poll: Duration,
    ) -> Self
    where
        B: DiskBackend + 'static,
        R: Record,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mpsm-prefetcher".into())
            .spawn(move || {
                let mut next_entry = 0usize;
                let mut release_cursor = 0usize;
                while !stop_flag.load(Ordering::Acquire) {
                    let m = progress.min_key();
                    // Release pages entirely below the slowest worker.
                    // The index is min_key-ordered; max_keys of a run are
                    // also non-decreasing, but across runs they are not,
                    // so scan a bounded window from the release cursor.
                    let frontier = index.frontier(m);
                    if frontier > release_cursor {
                        pool.release(
                            index.entries()[release_cursor..frontier]
                                .iter()
                                .filter(|e| e.max_key < m),
                        );
                        // Only advance past entries that are certainly
                        // dead; keep straddling pages in the window.
                        while release_cursor < frontier
                            && index.entries()[release_cursor].max_key < m
                        {
                            release_cursor += 1;
                        }
                    }
                    // Prefetch the lookahead window.
                    let horizon = m.saturating_add(lookahead);
                    while next_entry < index.len() && index.entries()[next_entry].min_key <= horizon
                    {
                        let e = index.entries()[next_entry];
                        if pool.prefetch(e.run, e.page).is_err() {
                            // Backend fault: leave the page to demand
                            // loading, which will surface the error to
                            // the worker that actually needs it.
                        }
                        next_entry += 1;
                    }
                    if m == u64::MAX {
                        break; // all workers done
                    }
                    std::thread::sleep(poll);
                }
            })
            .expect("failed to spawn prefetcher thread");
        Prefetcher { stop, handle: Some(handle) }
    }

    /// Request the thread to stop and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::record::KvRecord;
    use crate::run_store::{RunId, RunStore};

    fn setup(pages: u64) -> (Arc<RunStore<MemBackend>>, Arc<PageIndex>) {
        let store = Arc::new(RunStore::new(MemBackend::disk_array(), 4));
        let recs: Vec<KvRecord> = (0..pages * 4).map(|i| KvRecord::new(i, i)).collect();
        store.store_run(&recs).unwrap();
        let index = Arc::new(PageIndex::build(&store.all_metas()));
        (store, index)
    }

    #[test]
    fn progress_tracks_minimum() {
        let p = Progress::new(3);
        p.update(0, 10);
        p.update(1, 5);
        p.update(2, 20);
        assert_eq!(p.min_key(), 5);
        p.finish(1);
        assert_eq!(p.min_key(), 10);
        p.finish(0);
        p.finish(2);
        assert_eq!(p.min_key(), u64::MAX);
    }

    #[test]
    fn prefetcher_loads_ahead_and_releases_behind() {
        let (store, index) = setup(8);
        let pool = Arc::new(BufferPool::<_, KvRecord>::new(Arc::clone(&store), 64));
        let progress = Arc::new(Progress::new(1));
        let pf = Prefetcher::spawn(
            Arc::clone(&pool),
            Arc::clone(&index),
            Arc::clone(&progress),
            8, // two pages of lookahead (4 keys per page)
            Duration::from_micros(100),
        );
        // Wait for the initial window to load.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !pool.is_resident(RunId(0), 1) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(pool.is_resident(RunId(0), 0), "initial page prefetched");
        assert!(pool.is_resident(RunId(0), 1), "lookahead page prefetched");

        // Worker advances past page 0 (keys 0..=3).
        progress.update(0, 10);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.is_resident(RunId(0), 0) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!pool.is_resident(RunId(0), 0), "passed page released");

        progress.finish(0);
        pf.stop();
        let st = pool.stats();
        assert!(st.prefetches > 0);
        assert!(st.releases > 0);
    }

    #[test]
    fn prefetcher_terminates_when_all_workers_finish() {
        let (store, index) = setup(4);
        let pool = Arc::new(BufferPool::<_, KvRecord>::new(store, 64));
        let progress = Arc::new(Progress::new(2));
        let pf =
            Prefetcher::spawn(pool, index, Arc::clone(&progress), 4, Duration::from_micros(50));
        progress.finish(0);
        progress.finish(1);
        // Drop joins the thread; the loop must have exited on its own.
        pf.stop();
    }

    #[test]
    fn empty_progress_board_is_finished() {
        let p = Progress::new(0);
        assert_eq!(p.workers(), 1, "board always tracks at least one slot");
    }

    /// Spins until `cond` holds or two seconds elapse.
    fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !cond() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    #[test]
    fn lookahead_horizon_bounds_prefetch() {
        // 8 pages of 4 keys each; lookahead of 3 keys from key 0 covers
        // only page 0 (keys 0..=3): pages past the horizon must stay cold.
        let (store, index) = setup(8);
        let pool = Arc::new(BufferPool::<_, KvRecord>::new(store, 64));
        let progress = Arc::new(Progress::new(1));
        let pf = Prefetcher::spawn(
            Arc::clone(&pool),
            Arc::clone(&index),
            Arc::clone(&progress),
            3,
            Duration::from_micros(100),
        );
        assert!(wait_for(|| pool.is_resident(RunId(0), 0)), "page 0 within horizon");
        // Give the prefetcher time to (wrongly) run ahead before checking.
        std::thread::sleep(Duration::from_millis(20));
        for page in 2..8 {
            assert!(!pool.is_resident(RunId(0), page), "page {page} beyond horizon loaded");
        }
        progress.finish(0);
        pf.stop();
    }

    #[test]
    fn straddling_pages_stay_resident() {
        // Worker at key 2 sits inside page 0 (keys 0..=3): the page is
        // below the frontier but not yet passed, so it must not be
        // released even as later pages load.
        let (store, index) = setup(4);
        let pool = Arc::new(BufferPool::<_, KvRecord>::new(store, 64));
        let progress = Arc::new(Progress::new(1));
        let pf = Prefetcher::spawn(
            Arc::clone(&pool),
            Arc::clone(&index),
            Arc::clone(&progress),
            8,
            Duration::from_micros(100),
        );
        progress.update(0, 2);
        assert!(wait_for(|| pool.is_resident(RunId(0), 1)), "lookahead page loaded");
        std::thread::sleep(Duration::from_millis(20));
        assert!(pool.is_resident(RunId(0), 0), "straddling page released too early");
        assert_eq!(pool.stats().releases, 0);
        progress.finish(0);
        pf.stop();
    }

    #[test]
    fn prefetch_fault_falls_back_to_demand_loading() {
        use crate::backend::{FaultyBackend, MemBackend};
        // Fail the very first backend read (the prefetcher's): the page
        // must remain loadable on demand and the prefetcher must survive.
        let store =
            Arc::new(RunStore::new(FaultyBackend::new(MemBackend::disk_array(), vec![0]), 4));
        let recs: Vec<KvRecord> = (0..16).map(|i| KvRecord::new(i, i)).collect();
        store.store_run(&recs).unwrap();
        let index = Arc::new(PageIndex::build(&store.all_metas()));
        let pool = Arc::new(BufferPool::<_, KvRecord>::new(Arc::clone(&store), 64));
        let progress = Arc::new(Progress::new(1));
        let pf = Prefetcher::spawn(
            Arc::clone(&pool),
            index,
            Arc::clone(&progress),
            u64::MAX, // whole file in the window: all pages attempted
            Duration::from_micros(100),
        );
        assert!(wait_for(|| pool.is_resident(RunId(0), 3)), "later prefetches proceed");
        // The faulted page was skipped; a worker's demand read succeeds.
        let page = pool.get(RunId(0), 0).unwrap();
        assert_eq!(page[0].key, 0);
        progress.finish(0);
        pf.stop();
        assert!(pool.stats().prefetches >= 3, "prefetcher kept going past the fault");
    }

    #[test]
    fn multiple_runs_interleave_in_key_order() {
        // Two runs covering disjoint halves of the domain: the index
        // orders run 1's pages after run 0's, and the prefetcher walks
        // them in that global key order.
        let store = Arc::new(RunStore::new(MemBackend::disk_array(), 4));
        let low: Vec<KvRecord> = (0..8).map(|i| KvRecord::new(i, i)).collect();
        let high: Vec<KvRecord> = (8..16).map(|i| KvRecord::new(i, i)).collect();
        store.store_run(&low).unwrap();
        store.store_run(&high).unwrap();
        let index = Arc::new(PageIndex::build(&store.all_metas()));
        let pool = Arc::new(BufferPool::<_, KvRecord>::new(Arc::clone(&store), 64));
        let progress = Arc::new(Progress::new(1));
        let pf = Prefetcher::spawn(
            Arc::clone(&pool),
            Arc::clone(&index),
            Arc::clone(&progress),
            4,
            Duration::from_micros(100),
        );
        assert!(wait_for(|| pool.is_resident(RunId(0), 0)));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!pool.is_resident(RunId(1), 1), "far page of second run loaded too early");
        // Advance past run 0 entirely; run 1 loads, run 0 drains. (Run 1's
        // page 0 may already be released again at key 12, so observe its
        // page 1, which stays in the active window.)
        progress.update(0, 12);
        assert!(wait_for(|| pool.is_resident(RunId(1), 1)));
        assert!(wait_for(|| !pool.is_resident(RunId(0), 0)), "passed run released");
        progress.finish(0);
        pf.stop();
    }
}
