//! Fixed-size record trait connecting the storage layer to tuple types.
//!
//! The storage layer is generic over the stored record so that
//! `mpsm-core`'s `Tuple` (which lives above this crate in the dependency
//! graph) can flow through it. A [`Record`] is a small `Copy` value with
//! a fixed on-disk size, a stable byte encoding, and a sort key — the
//! key is what the page index orders runs by.

/// A fixed-size, plain-old-data record.
pub trait Record: Copy + Send + Sync + 'static {
    /// Encoded size in bytes. Must be non-zero.
    const SIZE: usize;

    /// Serialize into `buf` (exactly `Self::SIZE` bytes).
    ///
    /// # Panics
    /// Implementations may panic if `buf.len() != Self::SIZE`.
    fn write_to(&self, buf: &mut [u8]);

    /// Deserialize from `buf` (exactly `Self::SIZE` bytes).
    fn read_from(buf: &[u8]) -> Self;

    /// The join/sort key of this record.
    fn key(&self) -> u64;
}

/// The paper's 16-byte `[joinkey: 64-bit, payload: 64-bit]` record,
/// usable directly by storage tests and by callers that do not bring
/// their own tuple type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvRecord {
    /// 64-bit join key.
    pub key: u64,
    /// 64-bit payload (record id or data pointer, per the paper).
    pub payload: u64,
}

impl KvRecord {
    /// Construct from key and payload.
    pub fn new(key: u64, payload: u64) -> Self {
        KvRecord { key, payload }
    }
}

impl Record for KvRecord {
    const SIZE: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::SIZE);
        buf[..8].copy_from_slice(&self.key.to_le_bytes());
        buf[8..].copy_from_slice(&self.payload.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), Self::SIZE);
        let key = u64::from_le_bytes(buf[..8].try_into().expect("8-byte key"));
        let payload = u64::from_le_bytes(buf[8..].try_into().expect("8-byte payload"));
        KvRecord { key, payload }
    }

    fn key(&self) -> u64 {
        self.key
    }
}

/// Encode a slice of records into a contiguous byte buffer.
pub fn encode_page<R: Record>(records: &[R]) -> Vec<u8> {
    let mut buf = vec![0u8; records.len() * R::SIZE];
    for (r, chunk) in records.iter().zip(buf.chunks_mut(R::SIZE)) {
        r.write_to(chunk);
    }
    buf
}

/// Decode a byte buffer produced by [`encode_page`].
///
/// # Panics
/// Panics if the buffer length is not a multiple of `R::SIZE`.
pub fn decode_page<R: Record>(buf: &[u8]) -> Vec<R> {
    assert_eq!(buf.len() % R::SIZE, 0, "page buffer not a whole number of records");
    buf.chunks(R::SIZE).map(R::read_from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_roundtrip() {
        let r = KvRecord::new(0xdead_beef, 42);
        let mut buf = [0u8; 16];
        r.write_to(&mut buf);
        assert_eq!(KvRecord::read_from(&buf), r);
    }

    #[test]
    fn page_roundtrip() {
        let recs: Vec<KvRecord> = (0..100).map(|i| KvRecord::new(i, i * 2)).collect();
        let bytes = encode_page(&recs);
        assert_eq!(bytes.len(), 100 * 16);
        assert_eq!(decode_page::<KvRecord>(&bytes), recs);
    }

    #[test]
    fn empty_page_roundtrip() {
        let bytes = encode_page::<KvRecord>(&[]);
        assert!(bytes.is_empty());
        assert!(decode_page::<KvRecord>(&bytes).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number of records")]
    fn ragged_page_panics() {
        let _ = decode_page::<KvRecord>(&[0u8; 17]);
    }

    #[test]
    fn key_accessor() {
        assert_eq!(KvRecord::new(7, 9).key(), 7);
    }
}
