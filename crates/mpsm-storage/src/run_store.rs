//! Sorted-run storage: writers, metadata, and streaming readers.
//!
//! During D-MPSM run generation each worker sorts its chunk and spools it
//! through a [`RunWriter`], which cuts the stream into fixed-size pages,
//! records each page's minimal and maximal join key (the material of the
//! page index, Figure 4), and hands the page image to the backend.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::DiskBackend;
use crate::record::{decode_page, encode_page, Record};
use crate::{Result, StorageError};

/// Identifier of a run within a [`RunStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u32);

/// Metadata describing one stored sorted run.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// The run's id.
    pub id: RunId,
    /// Total records in the run.
    pub len: u64,
    /// Records per full page.
    pub page_records: u32,
    /// First (minimal) key of each page — `v_ij` in the paper's index.
    pub min_keys: Vec<u64>,
    /// Last (maximal) key of each page — used to decide when a page has
    /// been passed by all workers and can be released.
    pub max_keys: Vec<u64>,
}

impl RunMeta {
    /// Number of pages in the run.
    pub fn pages(&self) -> u32 {
        self.min_keys.len() as u32
    }

    /// Number of records on page `page` (the final page may be short).
    pub fn records_on_page(&self, page: u32) -> u32 {
        let full = self.page_records as u64;
        let before = page as u64 * full;
        (self.len - before).min(full) as u32
    }
}

/// A shared store of sorted runs on one backend.
pub struct RunStore<B> {
    backend: Arc<B>,
    page_records: u32,
    metas: Mutex<Vec<RunMeta>>,
}

impl<B: DiskBackend> RunStore<B> {
    /// Create a store cutting pages of `page_records` records.
    pub fn new(backend: B, page_records: u32) -> Self {
        assert!(page_records > 0, "page size must be positive");
        RunStore { backend: Arc::new(backend), page_records, metas: Mutex::new(Vec::new()) }
    }

    /// Records per page.
    pub fn page_records(&self) -> u32 {
        self.page_records
    }

    /// Access the underlying backend (for I/O statistics).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Begin writing a new run; returns its writer.
    pub fn begin_run<R: Record>(&self) -> RunWriter<'_, B, R> {
        let id = {
            let mut metas = self.metas.lock();
            let id = RunId(metas.len() as u32);
            metas.push(RunMeta {
                id,
                len: 0,
                page_records: self.page_records,
                min_keys: Vec::new(),
                max_keys: Vec::new(),
            });
            id
        };
        RunWriter {
            store: self,
            id,
            buf: Vec::with_capacity(self.page_records as usize),
            next_page: 0,
            written: 0,
        }
    }

    /// Write a whole pre-sorted slice as a run (convenience for tests and
    /// run generation).
    pub fn store_run<R: Record>(&self, records: &[R]) -> Result<RunMeta> {
        debug_assert!(records.windows(2).all(|w| w[0].key() <= w[1].key()), "run must be sorted");
        let mut writer = self.begin_run::<R>();
        for r in records {
            writer.push(*r)?;
        }
        writer.finish()
    }

    /// Metadata of run `id`.
    pub fn meta(&self, id: RunId) -> Result<RunMeta> {
        self.metas.lock().get(id.0 as usize).cloned().ok_or(StorageError::UnknownRun(id))
    }

    /// Metadata of all runs, in id order.
    pub fn all_metas(&self) -> Vec<RunMeta> {
        self.metas.lock().clone()
    }

    /// Number of runs stored.
    pub fn run_count(&self) -> u32 {
        self.metas.lock().len() as u32
    }

    /// Read one page of a run, decoded.
    pub fn read_page<R: Record>(&self, run: RunId, page: u32) -> Result<Vec<R>> {
        let meta = self.meta(run)?;
        if page >= meta.pages() {
            return Err(StorageError::PageOutOfBounds { run, page, pages: meta.pages() });
        }
        Ok(decode_page(&self.backend.read_page(run, page)?))
    }

    /// A sequential reader over run `id` that fetches pages on demand.
    pub fn reader<R: Record>(&self, id: RunId) -> Result<RunReader<'_, B, R>> {
        let meta = self.meta(id)?;
        Ok(RunReader { store: self, meta, page: 0, offset: 0, current: Vec::new() })
    }

    fn flush_page<R: Record>(&self, id: RunId, page: u32, records: &[R]) -> Result<()> {
        self.backend.write_page(id, page, &encode_page(records))?;
        let mut metas = self.metas.lock();
        let meta = &mut metas[id.0 as usize];
        meta.min_keys.push(records.first().expect("non-empty page").key());
        meta.max_keys.push(records.last().expect("non-empty page").key());
        meta.len += records.len() as u64;
        Ok(())
    }
}

/// Incremental writer for one run. Records must arrive in key order.
pub struct RunWriter<'a, B: DiskBackend, R: Record> {
    store: &'a RunStore<B>,
    id: RunId,
    buf: Vec<R>,
    next_page: u32,
    written: u64,
}

impl<'a, B: DiskBackend, R: Record> RunWriter<'a, B, R> {
    /// The id of the run being written.
    pub fn id(&self) -> RunId {
        self.id
    }

    /// Append one record (must be `>=` the previous record's key).
    pub fn push(&mut self, record: R) -> Result<()> {
        if let Some(last) = self.buf.last() {
            debug_assert!(last.key() <= record.key(), "records must be pushed in key order");
        }
        self.buf.push(record);
        self.written += 1;
        if self.buf.len() == self.store.page_records as usize {
            self.store.flush_page(self.id, self.next_page, &self.buf)?;
            self.next_page += 1;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flush the final partial page and return the run's metadata.
    pub fn finish(self) -> Result<RunMeta> {
        if !self.buf.is_empty() {
            self.store.flush_page(self.id, self.next_page, &self.buf)?;
        }
        self.store.meta(self.id)
    }
}

/// Streaming reader over one run: yields records in order, fetching one
/// page at a time (the minimal-RAM access pattern of Figure 4).
pub struct RunReader<'a, B: DiskBackend, R: Record> {
    store: &'a RunStore<B>,
    meta: RunMeta,
    page: u32,
    offset: usize,
    current: Vec<R>,
}

impl<'a, B: DiskBackend, R: Record> RunReader<'a, B, R> {
    /// Metadata of the run being read.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// Next record, or `None` at end of run.
    ///
    /// Deliberately named like `Iterator::next` (same reading-cursor
    /// semantics) but fallible — hence not an `Iterator` impl.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<R>> {
        if self.offset >= self.current.len() {
            if self.page >= self.meta.pages() {
                return Ok(None);
            }
            self.current = self.store.read_page(self.meta.id, self.page)?;
            self.page += 1;
            self.offset = 0;
        }
        let r = self.current[self.offset];
        self.offset += 1;
        Ok(Some(r))
    }

    /// Peek at the next record without consuming it.
    pub fn peek(&mut self) -> Result<Option<R>> {
        if self.offset >= self.current.len() {
            if self.page >= self.meta.pages() {
                return Ok(None);
            }
            self.current = self.store.read_page(self.meta.id, self.page)?;
            self.page += 1;
            self.offset = 0;
        }
        Ok(Some(self.current[self.offset]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::record::KvRecord;

    fn store() -> RunStore<MemBackend> {
        RunStore::new(MemBackend::disk_array(), 8)
    }

    fn sorted_records(n: u64) -> Vec<KvRecord> {
        (0..n).map(|i| KvRecord::new(i * 3, i)).collect()
    }

    #[test]
    fn store_and_read_back() {
        let s = store();
        let recs = sorted_records(20);
        let meta = s.store_run(&recs).unwrap();
        assert_eq!(meta.len, 20);
        assert_eq!(meta.pages(), 3); // 8 + 8 + 4
        assert_eq!(meta.records_on_page(0), 8);
        assert_eq!(meta.records_on_page(2), 4);
        let mut out = Vec::new();
        let mut rd = s.reader::<KvRecord>(meta.id).unwrap();
        while let Some(r) = rd.next().unwrap() {
            out.push(r);
        }
        assert_eq!(out, recs);
    }

    #[test]
    fn min_max_keys_per_page() {
        let s = store();
        let meta = s.store_run(&sorted_records(20)).unwrap();
        assert_eq!(meta.min_keys, vec![0, 24, 48]);
        assert_eq!(meta.max_keys, vec![21, 45, 57]);
    }

    #[test]
    fn multiple_runs_get_distinct_ids() {
        let s = store();
        let a = s.store_run(&sorted_records(4)).unwrap();
        let b = s.store_run(&sorted_records(4)).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(s.run_count(), 2);
    }

    #[test]
    fn empty_run_has_no_pages() {
        let s = store();
        let meta = s.store_run::<KvRecord>(&[]).unwrap();
        assert_eq!(meta.pages(), 0);
        assert_eq!(meta.len, 0);
        let mut rd = s.reader::<KvRecord>(meta.id).unwrap();
        assert!(rd.next().unwrap().is_none());
    }

    #[test]
    fn page_out_of_bounds_is_reported() {
        let s = store();
        let meta = s.store_run(&sorted_records(4)).unwrap();
        match s.read_page::<KvRecord>(meta.id, 7) {
            Err(StorageError::PageOutOfBounds { page: 7, pages: 1, .. }) => {}
            other => panic!("expected out-of-bounds, got {other:?}"),
        }
    }

    #[test]
    fn unknown_run_is_reported() {
        let s = store();
        assert!(matches!(s.meta(RunId(3)), Err(StorageError::UnknownRun(RunId(3)))));
    }

    #[test]
    fn peek_does_not_consume() {
        let s = store();
        let meta = s.store_run(&sorted_records(3)).unwrap();
        let mut rd = s.reader::<KvRecord>(meta.id).unwrap();
        assert_eq!(rd.peek().unwrap().unwrap().key, 0);
        assert_eq!(rd.peek().unwrap().unwrap().key, 0);
        assert_eq!(rd.next().unwrap().unwrap().key, 0);
        assert_eq!(rd.next().unwrap().unwrap().key, 3);
    }

    #[test]
    fn exact_page_multiple_has_no_partial_page() {
        let s = store();
        let meta = s.store_run(&sorted_records(16)).unwrap();
        assert_eq!(meta.pages(), 2);
        assert_eq!(meta.records_on_page(1), 8);
    }

    #[test]
    fn incremental_writer_matches_bulk() {
        let s = store();
        let recs = sorted_records(13);
        let mut w = s.begin_run::<KvRecord>();
        for r in &recs {
            w.push(*r).unwrap();
        }
        let meta = w.finish().unwrap();
        let bulk = s.store_run(&recs).unwrap();
        assert_eq!(meta.min_keys, bulk.min_keys);
        assert_eq!(meta.max_keys, bulk.max_keys);
        assert_eq!(meta.len, bulk.len);
    }
}
