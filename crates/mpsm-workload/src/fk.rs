//! Foreign-key workloads with exact multiplicities (Figures 12–14).
//!
//! `R` gets *unique* keys (a dimension table); `S` references each `R`
//! key exactly `m` times in shuffled order (a fact table with a
//! foreign key). Every probe finds partners and the join cardinality is
//! exactly `|S|` — the setup that makes the paper's multiplicities
//! meaningful.
//!
//! Key uniqueness without an `O(n log n)` dedup: a four-round Feistel
//! network over the 32-bit key domain is a *bijection*, so encrypting
//! the indices `0..n` yields `n` distinct pseudo-random keys in
//! `[0, 2^32)` in `O(n)`.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha_like::StdRng;

use mpsm_core::Tuple;

use crate::{Workload, KEY_DOMAIN};

/// `rand`'s StdRng behind a narrower name (the exact algorithm is
/// unspecified upstream; determinism per seed within one build is what
/// the experiments need).
mod rand_chacha_like {
    pub use rand::rngs::StdRng;
}

/// Four-round Feistel permutation of the 32-bit domain.
fn feistel32(index: u32, seed: u64) -> u32 {
    let mut left = (index >> 16) as u16;
    let mut right = (index & 0xffff) as u16;
    for round in 0..4u64 {
        let k = seed.wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let f = ((right as u64).wrapping_add(k).wrapping_mul(0xff51_afd7_ed55_8ccd) >> 24) as u16;
        let new_right = left ^ f;
        left = right;
        right = new_right;
    }
    ((left as u32) << 16) | right as u32
}

/// `n` distinct pseudo-random keys in `[0, 2^32)`.
///
/// # Panics
/// Panics if `n` exceeds the 32-bit domain.
pub fn unique_keys(n: usize, seed: u64) -> Vec<u64> {
    assert!((n as u64) <= KEY_DOMAIN, "cannot draw {n} unique keys from a 2^32 domain");
    (0..n as u32).map(|i| feistel32(i, seed) as u64).collect()
}

/// The paper's uniform foreign-key dataset: `|R| = r_len` unique keys,
/// `|S| = multiplicity · |R|` with every R key appearing exactly
/// `multiplicity` times, shuffled. Payloads are sequential row ids.
pub fn fk_uniform(r_len: usize, multiplicity: usize, seed: u64) -> Workload {
    let keys = unique_keys(r_len, seed);
    let r: Vec<Tuple> = keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect();

    let mut s_keys: Vec<u64> = Vec::with_capacity(r_len * multiplicity);
    for _ in 0..multiplicity {
        s_keys.extend_from_slice(&keys);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5357_4150); // "SWAP"
    s_keys.shuffle(&mut rng);
    let s: Vec<Tuple> =
        s_keys.into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect();
    Workload { r, s }
}

/// Independent uniform draws over `[0, domain)` for both relations (no
/// FK constraint; join partners arise from collisions). Used by tests
/// and the micro-benchmarks.
pub fn uniform_independent(r_len: usize, s_len: usize, domain: u64, seed: u64) -> Workload {
    assert!(domain > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let r = (0..r_len).map(|i| Tuple::new(rng.gen_range(0..domain), i as u64)).collect();
    let s = (0..s_len).map(|i| Tuple::new(rng.gen_range(0..domain), i as u64)).collect();
    Workload { r, s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn feistel_is_a_bijection_on_a_sample() {
        let mut seen = HashSet::new();
        for i in 0..100_000u32 {
            assert!(seen.insert(feistel32(i, 42)), "collision at index {i}");
        }
    }

    #[test]
    fn unique_keys_are_unique_and_in_domain() {
        let keys = unique_keys(50_000, 7);
        let set: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), keys.len());
        assert!(keys.iter().all(|&k| k < KEY_DOMAIN));
    }

    #[test]
    fn unique_keys_deterministic_per_seed() {
        assert_eq!(unique_keys(1000, 9), unique_keys(1000, 9));
        assert_ne!(unique_keys(1000, 9), unique_keys(1000, 10));
    }

    #[test]
    fn fk_uniform_has_exact_multiplicity() {
        let w = fk_uniform(1000, 4, 3);
        assert_eq!(w.r.len(), 1000);
        assert_eq!(w.s.len(), 4000);
        // Every S key occurs exactly 4 times and references an R key.
        let r_keys: HashSet<u64> = w.r.iter().map(|t| t.key).collect();
        let mut counts: std::collections::HashMap<u64, usize> = Default::default();
        for t in &w.s {
            assert!(r_keys.contains(&t.key), "dangling foreign key");
            *counts.entry(t.key).or_default() += 1;
        }
        assert!(counts.values().all(|&c| c == 4));
    }

    #[test]
    fn fk_join_cardinality_is_s_len() {
        let w = fk_uniform(500, 8, 11);
        assert_eq!(mpsm_baselines_oracle(&w.r, &w.s), 4000);
    }

    // Local copy of the sort-count oracle to avoid a dev-dependency
    // cycle with mpsm-baselines.
    fn mpsm_baselines_oracle(r: &[Tuple], s: &[Tuple]) -> u64 {
        let mut rk: Vec<u64> = r.iter().map(|t| t.key).collect();
        let mut sk: Vec<u64> = s.iter().map(|t| t.key).collect();
        rk.sort_unstable();
        sk.sort_unstable();
        let (mut i, mut j, mut c) = (0, 0, 0u64);
        while i < rk.len() && j < sk.len() {
            match rk[i].cmp(&sk[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let k = rk[i];
                    let i0 = i;
                    let j0 = j;
                    while i < rk.len() && rk[i] == k {
                        i += 1;
                    }
                    while j < sk.len() && sk[j] == k {
                        j += 1;
                    }
                    c += ((i - i0) * (j - j0)) as u64;
                }
            }
        }
        c
    }

    #[test]
    fn multiplicity_one_is_a_permutation_join() {
        let w = fk_uniform(2000, 1, 21);
        assert_eq!(w.s.len(), 2000);
        assert_eq!(mpsm_baselines_oracle(&w.r, &w.s), 2000);
    }

    #[test]
    fn uniform_independent_in_domain() {
        let w = uniform_independent(1000, 2000, 5000, 13);
        assert!(w.r.iter().all(|t| t.key < 5000));
        assert!(w.s.iter().all(|t| t.key < 5000));
        assert_eq!(w.r.len(), 1000);
        assert_eq!(w.s.len(), 2000);
    }

    #[test]
    fn payloads_are_row_ids() {
        let w = fk_uniform(100, 2, 17);
        for (i, t) in w.r.iter().enumerate() {
            assert_eq!(t.payload, i as u64);
        }
        for (i, t) in w.s.iter().enumerate() {
            assert_eq!(t.payload, i as u64);
        }
    }
}
