//! Workload generators for the MPSM evaluation (paper §5.1, §5.5, §5.6).
//!
//! The paper's datasets are pairs of relations `R` and `S` of 16-byte
//! tuples (`[joinkey: 64-bit, payload: 64-bit]`, keys from `[0, 2^32)`):
//!
//! * `|R| = 1600M`, `|S| = m · |R|` for multiplicities
//!   `m ∈ {1, 4, 8, 16}` — TPC-H-style fact/dimension ratios;
//! * uniform key distributions for Figures 12–14;
//! * **location skew** for Figure 15 (S arranged in small-to-large key
//!   order, no total order);
//! * **negatively correlated 80:20 distribution skew** for Figure 16
//!   (80% of R keys at the high 20% of the domain, 80% of S keys at the
//!   low 20%).
//!
//! This crate reproduces all of them at configurable scale, fully
//! deterministic under a seed. `M = 2^20` as in the paper
//! ([`M_TUPLES`]).

pub mod fk;
pub mod location;
pub mod skew;
pub mod tpch;
pub mod zipf;

pub use fk::{fk_uniform, uniform_independent, unique_keys};
pub use location::{apply_location_skew, extreme_location_skew};
pub use skew::{skewed_80_20, skewed_negative_correlation};
pub use tpch::orders_lineitems;
pub use zipf::ZipfSampler;

use mpsm_core::Tuple;

/// The paper's `M`: `2^20` tuples.
pub const M_TUPLES: usize = 1 << 20;

/// The paper's key domain: `[0, 2^32)`.
pub const KEY_DOMAIN: u64 = 1 << 32;

/// A generated join workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The (usually smaller, private) input `R`.
    pub r: Vec<Tuple>,
    /// The (usually larger, public) input `S`.
    pub s: Vec<Tuple>,
}

impl Workload {
    /// `|S| / |R|`, the paper's multiplicity.
    pub fn multiplicity(&self) -> f64 {
        if self.r.is_empty() {
            0.0
        } else {
            self.s.len() as f64 / self.r.len() as f64
        }
    }

    /// Total size in bytes (both relations).
    pub fn bytes(&self) -> usize {
        (self.r.len() + self.s.len()) * std::mem::size_of::<Tuple>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_accessors() {
        let w = Workload {
            r: (0..10u64).map(|k| Tuple::new(k, 0)).collect(),
            s: (0..40u64).map(|k| Tuple::new(k % 10, 0)).collect(),
        };
        assert_eq!(w.multiplicity(), 4.0);
        assert_eq!(w.bytes(), 50 * 16);
    }

    #[test]
    fn empty_workload_multiplicity() {
        let w = Workload { r: vec![], s: vec![] };
        assert_eq!(w.multiplicity(), 0.0);
    }
}

/// Every generator in this crate must be a pure function of its
/// parameters and seed: the RNG substrate has no entropy source, so
/// proptest and integration runs replay identically on any machine.
/// These tests pin that property per generator.
#[cfg(test)]
mod determinism_tests {
    use super::*;

    fn assert_reproducible(label: &str, gen: impl Fn(u64) -> Workload) {
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a.r, b.r, "{label}: R differs across runs with the same seed");
        assert_eq!(a.s, b.s, "{label}: S differs across runs with the same seed");
        let c = gen(8);
        assert!(
            a.r != c.r || a.s != c.s,
            "{label}: seed is ignored — different seeds gave identical data"
        );
    }

    #[test]
    fn fk_uniform_is_seed_deterministic() {
        assert_reproducible("fk_uniform", |seed| fk_uniform(500, 4, seed));
    }

    #[test]
    fn uniform_independent_is_seed_deterministic() {
        assert_reproducible("uniform_independent", |seed| {
            uniform_independent(500, 2000, 1 << 20, seed)
        });
    }

    #[test]
    fn orders_lineitems_is_seed_deterministic() {
        assert_reproducible("orders_lineitems", |seed| orders_lineitems(200, seed));
    }

    #[test]
    fn skew_generators_are_seed_deterministic() {
        assert_reproducible("skewed_negative_correlation", |seed| {
            skewed_negative_correlation(400, 1600, 1 << 16, seed)
        });
        let a = skewed_80_20(300, 1 << 16, true, 5);
        assert_eq!(a, skewed_80_20(300, 1 << 16, true, 5));
        assert_ne!(a, skewed_80_20(300, 1 << 16, true, 6));
    }

    #[test]
    fn location_skew_is_seed_deterministic() {
        let base: Vec<Tuple> = unique_keys(256, 3).into_iter().map(|k| Tuple::new(k, 0)).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        apply_location_skew(&mut a, 8, 11);
        apply_location_skew(&mut b, 8, 11);
        assert_eq!(a, b);
        let mut c = base.clone();
        apply_location_skew(&mut c, 8, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_tuples_are_seed_deterministic() {
        let z = ZipfSampler::new(1000, 0.8);
        assert_eq!(z.tuples(500, 1 << 20, 21), z.tuples(500, 1 << 20, 21));
        assert_ne!(z.tuples(500, 1 << 20, 21), z.tuples(500, 1 << 20, 22));
    }

    #[test]
    fn unique_keys_are_unique_and_seed_deterministic() {
        let a = unique_keys(2048, 9);
        assert_eq!(a, unique_keys(2048, 9));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 2048, "keys must be unique");
        assert_ne!(a, unique_keys(2048, 10));
    }
}
