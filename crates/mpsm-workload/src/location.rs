//! Location skew (§5.5, Figure 15).
//!
//! Location skew is about *where* keys sit within the relation, not how
//! often they occur: "We introduced location skew by arranging S in
//! small to large join key order — no total order, so sorting the
//! clusters was still necessary." In the extreme, all join partners of
//! a private partition `R_i` live in exactly one `S_j` — either the
//! local one or one remote one.
//!
//! Location skew on `R` is irrelevant (R is redistributed anyway), so
//! only `S` is rearranged.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use mpsm_core::Tuple;

/// Arrange `s` in small-to-large key order across `clusters` blocks:
/// tuples are ordered by key, cut into `clusters` equal blocks, and
/// each block is shuffled internally — clustered, but with no total
/// order (each worker still has to sort its chunk).
pub fn apply_location_skew(s: &mut [Tuple], clusters: usize, seed: u64) {
    assert!(clusters > 0);
    s.sort_unstable_by_key(|t| t.key);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let block = s.len().div_ceil(clusters).max(1);
    for chunk in s.chunks_mut(block) {
        chunk.shuffle(&mut rng);
    }
}

/// Extreme location skew with a worker offset: the key-ordered blocks
/// are rotated by `rotate` positions, so the join partners of worker
/// `w`'s private range sit in chunk `(w + rotate) mod clusters` of `S` —
/// `rotate = 0` puts them in the *local* run, `rotate = 1` in exactly
/// one *remote* run (the two extremes of Figure 15).
pub fn extreme_location_skew(s: &mut [Tuple], clusters: usize, rotate: usize, seed: u64) {
    apply_location_skew(s, clusters, seed);
    if clusters <= 1 || s.is_empty() {
        return;
    }
    let block = s.len().div_ceil(clusters).max(1);
    let shift = (rotate % clusters) * block;
    let shift = shift.min(s.len());
    s.rotate_right(shift);
}

/// How clustered a relation is: mean over adjacent chunk pairs of the
/// probability that chunk `i`'s maximum key ≤ chunk `i+1`'s minimum key
/// (1.0 = perfectly clustered small-to-large, ≈0 = unordered).
pub fn clustering_score(s: &[Tuple], clusters: usize) -> f64 {
    if clusters < 2 || s.is_empty() {
        return 1.0;
    }
    let block = s.len().div_ceil(clusters).max(1);
    let chunks: Vec<&[Tuple]> = s.chunks(block).collect();
    let mut ordered = 0usize;
    let mut pairs = 0usize;
    for w in chunks.windows(2) {
        let max0 = w[0].iter().map(|t| t.key).max().unwrap_or(0);
        let min1 = w[1].iter().map(|t| t.key).min().unwrap_or(u64::MAX);
        pairs += 1;
        if max0 <= min1 {
            ordered += 1;
        }
    }
    if pairs == 0 {
        1.0
    } else {
        ordered as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fk::uniform_independent;

    #[test]
    fn location_skew_clusters_keys() {
        let mut w = uniform_independent(0, 10_000, 1 << 20, 3);
        assert!(clustering_score(&w.s, 8) < 0.5, "uniform data is unclustered");
        apply_location_skew(&mut w.s, 8, 7);
        assert_eq!(clustering_score(&w.s, 8), 1.0, "blocks are key-ordered");
    }

    #[test]
    fn location_skew_preserves_multiset() {
        let mut w = uniform_independent(0, 5_000, 1 << 16, 5);
        let mut before: Vec<(u64, u64)> = w.s.iter().map(|t| (t.key, t.payload)).collect();
        apply_location_skew(&mut w.s, 4, 9);
        let mut after: Vec<(u64, u64)> = w.s.iter().map(|t| (t.key, t.payload)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn blocks_are_internally_unsorted() {
        // "No total order, so sorting the clusters was still necessary."
        let mut w = uniform_independent(0, 10_000, 1 << 20, 11);
        apply_location_skew(&mut w.s, 4, 13);
        let block = w.s.len().div_ceil(4);
        let first_block = &w.s[..block];
        let sorted = first_block.windows(2).all(|p| p[0].key <= p[1].key);
        assert!(!sorted, "cluster contents must not be totally ordered");
    }

    #[test]
    fn rotation_moves_partners_remote() {
        let mut local = uniform_independent(0, 8_000, 1 << 20, 17).s;
        let mut remote = local.clone();
        extreme_location_skew(&mut local, 4, 0, 19);
        extreme_location_skew(&mut remote, 4, 1, 19);
        let block = local.len().div_ceil(4);
        // Rotated by one block: remote's chunk 1 equals local's chunk 0.
        assert_eq!(local[..block], remote[block..2 * block]);
    }

    #[test]
    fn degenerate_inputs() {
        let mut empty: Vec<Tuple> = vec![];
        extreme_location_skew(&mut empty, 4, 1, 0);
        assert!(empty.is_empty());

        let mut one = vec![Tuple::new(5, 0)];
        apply_location_skew(&mut one, 10, 0);
        assert_eq!(one.len(), 1);
        assert_eq!(clustering_score(&one, 1), 1.0);
    }
}
