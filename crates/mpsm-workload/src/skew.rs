//! Distribution skew: 80:20 bands and negative correlation (§5.6).
//!
//! The paper's worst case for a range-partitioned join: "Our data set
//! again contained 1600M tuples in R with an 80:20 distribution of the
//! join keys: 80% of the join keys were generated at the 20% high end
//! of the domain. The S data [...] was generated with opposite skew."
//! Positively correlated skew is harmless (splitters follow both
//! distributions); negative correlation forces the splitter computation
//! to trade R-sort cost against S-scan cost (Figure 16).

use rand::{Rng, SeedableRng};

use mpsm_core::Tuple;

use crate::Workload;

/// Draw `n` keys with an 80:20 skew over `[0, domain)`: 80% of the keys
/// land in the 20% band at the high end (`high = true`) or the low end
/// (`high = false`).
pub fn skewed_80_20(n: usize, domain: u64, high: bool, seed: u64) -> Vec<Tuple> {
    assert!(domain >= 5, "domain too small for a 20% band");
    let band = domain / 5; // 20%
    let rest = domain - band;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let in_band = rng.gen_range(0..10u32) < 8; // 80%
            let key = match (in_band, high) {
                (true, true) => rest + rng.gen_range(0..band), // high band
                (true, false) => rng.gen_range(0..band),       // low band
                (false, true) => rng.gen_range(0..rest),       // low body
                (false, false) => band + rng.gen_range(0..rest), // high body
            };
            Tuple::new(key, i as u64)
        })
        .collect()
}

/// The Figure 16 dataset: R skewed to the *high* 20% of the domain,
/// `S = multiplicity · |R|` skewed to the *low* 20% — negatively
/// correlated.
pub fn skewed_negative_correlation(
    r_len: usize,
    multiplicity: usize,
    domain: u64,
    seed: u64,
) -> Workload {
    Workload {
        r: skewed_80_20(r_len, domain, true, seed),
        s: skewed_80_20(r_len * multiplicity, domain, false, seed ^ 0x0bad_cafe),
    }
}

/// Fraction of tuples whose key lies in the top 20% of `[0, domain)`.
pub fn high_band_fraction(tuples: &[Tuple], domain: u64) -> f64 {
    if tuples.is_empty() {
        return 0.0;
    }
    let cutoff = domain - domain / 5;
    tuples.iter().filter(|t| t.key >= cutoff).count() as f64 / tuples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_skew_concentrates_high() {
        let data = skewed_80_20(50_000, 1 << 20, true, 5);
        let frac = high_band_fraction(&data, 1 << 20);
        assert!((0.77..0.83).contains(&frac), "≈80% in the high band, got {frac}");
    }

    #[test]
    fn low_skew_concentrates_low() {
        let data = skewed_80_20(50_000, 1 << 20, false, 5);
        let frac = high_band_fraction(&data, 1 << 20);
        assert!(frac < 0.10, "high band nearly empty under low skew, got {frac}");
    }

    #[test]
    fn negative_correlation_opposes_bands() {
        let w = skewed_negative_correlation(20_000, 4, 1 << 20, 9);
        assert_eq!(w.s.len(), 80_000);
        let r_high = high_band_fraction(&w.r, 1 << 20);
        let s_high = high_band_fraction(&w.s, 1 << 20);
        assert!(r_high > 0.7, "R skewed high: {r_high}");
        assert!(s_high < 0.1, "S skewed low: {s_high}");
    }

    #[test]
    fn keys_stay_in_domain() {
        for high in [true, false] {
            let data = skewed_80_20(10_000, 1000, high, 1);
            assert!(data.iter().all(|t| t.key < 1000));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = skewed_80_20(1000, 1 << 16, true, 3);
        let b = skewed_80_20(1000, 1 << 16, true, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn payloads_are_row_ids() {
        let data = skewed_80_20(100, 1 << 10, true, 2);
        for (i, t) in data.iter().enumerate() {
            assert_eq!(t.payload, i as u64);
        }
    }
}
