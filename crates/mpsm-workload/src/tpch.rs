//! TPC-H-flavored order/lineitem workload.
//!
//! The paper grounds its multiplicities in TPC benchmarks: "including
//! not only the common cases (4, as specified for instance in TPC-H and
//! 8 to approximate the TPC-C specification)" (§5.1), and motivates the
//! scale with Amazon's ~4 billion order lines a year (§1). This module
//! generates that shape with *variable* fan-out: every order key gets
//! 1–7 line items (TPC-H's `L_ORDERKEY` distribution), averaging 4.
//!
//! Schema mapping onto the paper's 16-byte tuples:
//!
//! * `orders`:   key = order key (unique), payload = customer id;
//! * `lineitem`: key = order key (FK),     payload = price in cents.

use rand::{Rng, SeedableRng};

use mpsm_core::Tuple;

use crate::fk::unique_keys;
use crate::Workload;

/// Maximum line items per order (as in TPC-H).
pub const MAX_LINES_PER_ORDER: u64 = 7;

/// Generate `orders` orders with 1–7 line items each (uniform fan-out,
/// expected 4), deterministically under `seed`.
pub fn orders_lineitems(orders: usize, seed: u64) -> Workload {
    let keys = unique_keys(orders, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x7063_6874); // "tpch"
    let r: Vec<Tuple> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, 1000 + (i as u64 % 100_000))) // customer id
        .collect();

    let mut s: Vec<Tuple> = Vec::with_capacity(orders * 4);
    for &k in &keys {
        let lines = rng.gen_range(1..=MAX_LINES_PER_ORDER);
        for _ in 0..lines {
            // Price: 1.00 .. 10 000.00 in cents.
            let price = rng.gen_range(100..=1_000_000u64);
            s.push(Tuple::new(k, price));
        }
    }
    // Fact tables are not clustered by key: shuffle.
    use rand::seq::SliceRandom;
    s.shuffle(&mut rng);
    // Re-number payload-independent row ids? Keep prices — the queries
    // aggregate them.
    Workload { r, s }
}

/// Ground-truth revenue per order (sum of line prices), computed
/// independently of any join code. Returns pairs sorted by order key.
pub fn reference_revenue(w: &Workload) -> Vec<(u64, u64)> {
    let mut per_order: std::collections::HashMap<u64, u64> = Default::default();
    for line in &w.s {
        *per_order.entry(line.key).or_default() += line.payload;
    }
    let mut out: Vec<(u64, u64)> = per_order.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_is_between_one_and_seven() {
        let w = orders_lineitems(2000, 5);
        let mut counts: std::collections::HashMap<u64, u64> = Default::default();
        for t in &w.s {
            *counts.entry(t.key).or_default() += 1;
        }
        assert_eq!(counts.len(), 2000, "every order has at least one line");
        assert!(counts.values().all(|&c| (1..=MAX_LINES_PER_ORDER).contains(&c)));
        let avg = w.s.len() as f64 / 2000.0;
        assert!((3.0..5.0).contains(&avg), "average fan-out ≈ 4, got {avg}");
    }

    #[test]
    fn lineitems_reference_existing_orders() {
        let w = orders_lineitems(500, 9);
        let order_keys: std::collections::HashSet<u64> = w.r.iter().map(|t| t.key).collect();
        assert!(w.s.iter().all(|t| order_keys.contains(&t.key)), "no dangling FK");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = orders_lineitems(300, 11);
        let b = orders_lineitems(300, 11);
        assert_eq!(a.r, b.r);
        assert_eq!(a.s, b.s);
    }

    #[test]
    fn reference_revenue_sums_all_lines() {
        let w = orders_lineitems(400, 13);
        let revenue = reference_revenue(&w);
        assert_eq!(revenue.len(), 400);
        let total: u64 = revenue.iter().map(|&(_, v)| v).sum();
        let direct: u64 = w.s.iter().map(|t| t.payload).sum();
        assert_eq!(total, direct);
        assert!(revenue.windows(2).all(|p| p[0].0 < p[1].0), "sorted by order key");
    }

    #[test]
    fn prices_are_positive_and_bounded() {
        let w = orders_lineitems(200, 17);
        assert!(w.s.iter().all(|t| (100..=1_000_000).contains(&t.payload)));
    }
}
