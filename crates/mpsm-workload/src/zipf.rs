//! Zipf-distributed key sampling.
//!
//! A general-purpose heavy-tail generator complementing the paper's
//! 80:20 band skew: rank `r` (1-based) of `n` values is drawn with
//! probability proportional to `1 / r^theta`. Used by the extended
//! skew tests and the ablation benchmarks.

use rand::{Rng, SeedableRng};

use mpsm_core::Tuple;

/// Inverse-CDF Zipf sampler over `n` ranks.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative probabilities, `cum[r]` = P(rank ≤ r+1).
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler for `n` distinct ranks with exponent `theta`
    /// (`theta = 0` is uniform; common benchmark values 0.5–1.5).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be a finite non-negative number");
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(theta);
            cum.push(acc);
        }
        let total = acc;
        for c in cum.iter_mut() {
            *c /= total;
        }
        ZipfSampler { cum }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cum.len()
    }

    /// Sample one 0-based rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }

    /// Generate `len` tuples whose keys are Zipf-ranked values scaled
    /// into `[0, domain)` (rank 0 → the most frequent key).
    pub fn tuples(&self, len: usize, domain: u64, seed: u64) -> Vec<Tuple> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = self.ranks() as u64;
        (0..len)
            .map(|i| {
                let rank = self.sample(&mut rng) as u64;
                let key = rank * domain.max(n) / n.max(1);
                Tuple::new(key.min(domain - 1), i as u64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.2, "uniform ranks expected: {counts:?}");
    }

    #[test]
    fn high_theta_concentrates_on_rank_zero() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut rank0 = 0usize;
        let trials = 50_000;
        for _ in 0..trials {
            if z.sample(&mut rng) == 0 {
                rank0 += 1;
            }
        }
        let frac = rank0 as f64 / trials as f64;
        assert!(frac > 0.1, "rank 0 must dominate under theta=1.2, got {frac}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(17, 0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn tuples_stay_in_domain() {
        let z = ZipfSampler::new(100, 1.0);
        let data = z.tuples(5000, 1 << 16, 4);
        assert_eq!(data.len(), 5000);
        assert!(data.iter().all(|t| t.key < (1 << 16)));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
