//! Many concurrent clients, one shared worker pool.
//!
//! Simulates a small serving scenario: four client threads fire
//! differently-filtered paper queries at one [`mpsm::exec::Session`]
//! whose scheduler owns a 4-wide shared worker pool. The joins'
//! phases interleave on the pool instead of each client spawning its
//! own workers; the final EXPLAIN shows the queue wait and per-phase
//! timings of the last query.
//!
//! ```sh
//! cargo run --release --example concurrent_clients
//! ```

use mpsm::core::Tuple;
use mpsm::exec::{QuerySpec, Relation, SchedulerConfig, Session};

fn main() {
    // An orders ⋈ lineitem-shaped workload: 32k × 128k tuples.
    let orders: Vec<Tuple> = (0..32_768u64).map(|k| Tuple::new(k, k % 1000)).collect();
    let lineitem: Vec<Tuple> = (0..131_072u64).map(|i| Tuple::new(i % 32_768, i)).collect();

    let session = Session::new(SchedulerConfig::new(4).max_in_flight(3).queue_capacity(32));
    let r = session.register(Relation::new("orders", orders));
    let s = session.register(Relation::new("lineitem", lineitem));

    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let session = &session;
            let r = &r;
            let s = &s;
            scope.spawn(move || {
                for q in 0..3u64 {
                    let lo = (client * 4 + q) * 1000;
                    let spec = QuerySpec::join(r, s).filter_r(move |t| t.key >= lo);
                    let out = session.query(spec).expect("query failed");
                    println!(
                        "client {client} query {q}: max = {:?}, queued {:.3} ms, ran {:.3} ms",
                        out.result.max_payload_sum,
                        out.queue_wait.as_secs_f64() * 1e3,
                        out.execution.as_secs_f64() * 1e3,
                    );
                }
            });
        }
    });

    // One more query from the main thread; print its full EXPLAIN.
    let out =
        session.query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 1024)).expect("query failed");
    println!("\n{}", out.result.plan.explain());

    let m = session.scheduler().metrics();
    println!(
        "scheduler: {} submitted, {} completed, {} rejected, mean queue wait {:.3} ms",
        m.submitted,
        m.completed,
        m.rejected,
        m.queue_wait_micros as f64 / 1e3 / m.completed.max(1) as f64,
    );
}
