//! Memory-constrained joining with D-MPSM (paper §3.1, Figure 4).
//!
//! Even a main-memory DBMS spools intermediate results to disk to keep
//! RAM for the transactional working set. This example joins through
//! the paged run store twice — once on the simulated disk array, once
//! on real files — and shows that the resident-page high-water mark
//! tracks the configured budget, not the data volume.
//!
//! ```sh
//! cargo run --release --example memory_constrained_join
//! ```

use mpsm::core::join::d_mpsm::{DMpsmConfig, DMpsmJoin};
use mpsm::core::join::JoinConfig;
use mpsm::core::sink::CountSink;
use mpsm::storage::{FileBackend, MemBackend};
use mpsm::workload::fk_uniform;

fn main() {
    let w = fk_uniform(1 << 17, 4, 99);
    let mut cfg = DMpsmConfig::with_join(JoinConfig::with_threads(4));
    cfg.page_records = 2048;
    cfg.budget_pages = 32;
    let join = DMpsmJoin::new(cfg);
    let total_pages = (w.r.len() + w.s.len()) / 2048;
    println!(
        "joining {} + {} tuples = {} pages, RAM budget {} pages\n",
        w.r.len(),
        w.s.len(),
        total_pages,
        32
    );

    // Simulated disk array (deterministic I/O accounting).
    let (count, stats, report) = join
        .join_on::<MemBackend, CountSink>(MemBackend::disk_array(), &w.r, &w.s)
        .expect("in-memory backend cannot fail");
    println!("simulated disk array:");
    println!(
        "  matches: {count}, wall {:.1} ms, simulated I/O {:.1} ms",
        stats.wall_ms(),
        report.simulated_io_ms
    );
    println!(
        "  spooled {} MiB, read back {} MiB",
        report.bytes_written >> 20,
        report.bytes_read >> 20
    );
    println!(
        "  buffer pool: high-water {} pages (of {} total), {} prefetches, {} releases, {} misses\n",
        report.buffer.high_water_pages,
        total_pages,
        report.buffer.prefetches,
        report.buffer.releases,
        report.buffer.misses
    );

    // Real files.
    let dir = std::env::temp_dir().join(format!("mpsm-example-{}", std::process::id()));
    let backend = FileBackend::new(&dir).expect("create spool directory");
    let (count_file, stats_file, _report) =
        join.join_on::<FileBackend, CountSink>(backend, &w.r, &w.s).expect("file I/O");
    println!("real file backend ({}):", dir.display());
    println!("  matches: {count_file}, wall {:.1} ms", stats_file.wall_ms());
    assert_eq!(count, count_file, "backend must not change the result");
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "\n(Figure 4: only the active window is RAM-resident; the rest is released/prefetched)"
    );
}
