//! The three NUMA commandments, demonstrated (paper §1, Figure 1).
//!
//! Runs the instrumented Figure 1 micro-benchmarks on the simulated
//! paper machine and prints the modeled penalties for breaking each
//! commandment, plus the access audit of the join algorithms.
//!
//! ```sh
//! cargo run --release --example numa_commandments
//! ```

use mpsm::numa::microbench::{figure1, MicrobenchConfig};
use mpsm::numa::{CostModel, Topology};

fn main() {
    let topo = Topology::paper_machine();
    println!(
        "simulated machine: {} nodes x {} cores x {} SMT = {} contexts (paper Figure 11)\n",
        topo.nodes,
        topo.cores_per_node,
        topo.smt,
        topo.total_contexts()
    );

    let model = CostModel::paper_calibrated();
    println!("calibrated access prices (ns per 16-byte touch):");
    for kind in mpsm::numa::AccessKind::ALL {
        println!("  {kind:?}: {:.1}", model.ns_per_access[kind.index()]);
    }
    println!("  sync event: {:.0}\n", model.ns_per_sync);

    let cfg =
        MicrobenchConfig { workers: 8, tuples_per_worker: 1 << 18, ..MicrobenchConfig::default() };
    for result in figure1(&cfg) {
        println!(
            "{}: NUMA-affine {:.1} ms vs NUMA-agnostic {:.1} ms → {:.2}x penalty",
            result.name,
            result.affine.modeled_ms,
            result.agnostic.modeled_ms,
            result.modeled_ratio()
        );
    }

    println!("\nC1: thou shalt not write thy neighbor's memory randomly");
    println!("C2: thou shalt read thy neighbor's memory only sequentially");
    println!("C3: thou shalt not wait for thy neighbors");
}
