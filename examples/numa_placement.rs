//! The NUMA commandments, observable from the CLI: run P-MPSM on a
//! simulated 4-socket machine twice — once with the paper's placement
//! (every run and partition homed on its owning worker's node) and once
//! deliberately misplaced (everything homed on socket 0, the
//! "first-touch malloc" anti-pattern) — and print the per-phase,
//! per-node access audit both ways.
//!
//! ```text
//! cargo run --example numa_placement
//! ```

use mpsm::core::context::{AllocPolicy, ExecContext};
use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::sink::CountSink;
use mpsm::core::{Phase, Tuple};
use mpsm::numa::{AccessKind, NodeId, Topology};

const PHASE_NAMES: [&str; 4] =
    ["1 sort public S ", "2 partition R   ", "3 sort R_i      ", "4 merge join    "];

fn audit(label: &str, cx: &ExecContext) {
    println!("{label}");
    println!("  phase             total      local%   remote-seq  remote-rand  verdict");
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let c = cx.phase_counters(*phase);
        if c.total_accesses() == 0 {
            continue;
        }
        // Random remote accesses break C1 — except the merge phase's
        // entry probes, the sub-linear O(log) reads C2 tolerates.
        let remote_rand = c.accesses(AccessKind::RemoteRand);
        let verdict = if remote_rand > c.total_accesses() / 100 {
            "C1 VIOLATED (random remote)"
        } else if remote_rand > 0 {
            "ok (seq + entry probes, C2)"
        } else if c.remote_fraction() > 0.5 {
            "remote but sequential (C1 ok)"
        } else {
            "ok"
        };
        println!(
            "  {}  {:>9}  {:>7.1}%  {:>10}  {:>10}   {}",
            PHASE_NAMES[i],
            c.total_accesses(),
            (1.0 - c.remote_fraction()) * 100.0,
            c.accesses(AccessKind::RemoteSeq),
            c.accesses(AccessKind::RemoteRand),
            verdict,
        );
    }
    println!("  arena (where the runs/partitions live):");
    for (n, stats) in cx.arena().stats().iter().enumerate() {
        println!("    node{n}: {:>4} buffers, {:>9} bytes", stats.buffers, stats.bytes);
    }
    let merged = cx.counters();
    println!(
        "  overall: {:.1}% local, {} random remote accesses\n",
        (1.0 - merged.remote_fraction()) * 100.0,
        merged.accesses(AccessKind::RemoteRand),
    );
}

fn main() {
    // A modest join on the paper's 4-socket machine shape, 8 workers
    // (two per socket).
    let n = 60_000u64;
    let r: Vec<Tuple> = (0..n).map(|i| Tuple::new((i * 2654435761) % (1 << 22), i)).collect();
    let s: Vec<Tuple> = (0..n).map(|i| Tuple::new((i * 40503) % (1 << 22), i)).collect();
    let join = PMpsmJoin::new(JoinConfig::with_threads(8));

    println!("P-MPSM, |R| = |S| = {n}, 4 nodes x 2 workers each\n");

    // The paper's placement: partition p lives on the node of the
    // worker that sorts and joins it.
    let placed = ExecContext::new(Topology::paper_machine(), 8);
    let (count_placed, _) = join.join_in::<CountSink>(&placed, &r, &s);
    audit("== placed (worker-local arenas, the paper's design) ==", &placed);

    // The anti-pattern: every allocation homed on socket 0, as an
    // unplaced malloc would do. Same code, same result — but the sort
    // phase now random-writes across the interconnect.
    let misplaced =
        ExecContext::new(Topology::paper_machine(), 8).alloc_policy(AllocPolicy::Pinned(NodeId(0)));
    let (count_misplaced, _) = join.join_in::<CountSink>(&misplaced, &r, &s);
    audit("== misplaced (everything homed on node 0) ==", &misplaced);

    assert_eq!(count_placed, count_misplaced, "placement must never change results");
    let placed_sort = placed.phase_counters(Phase::Three);
    let misplaced_sort = misplaced.phase_counters(Phase::Three);
    assert_eq!(placed_sort.accesses(AccessKind::RemoteRand), 0);
    assert!(misplaced_sort.accesses(AccessKind::RemoteRand) > 0);
    println!(
        "join count agrees either way ({count_placed} rows); the commandments only change WHERE \
         the time goes:\n  placed   sort: {:>6.1}% local\n  misplaced sort: {:>6.1}% local  \
         <- every one of those remote accesses is a random store over the interconnect",
        (1.0 - placed_sort.remote_fraction()) * 100.0,
        (1.0 - misplaced_sort.remote_fraction()) * 100.0,
    );
}
