//! Operational business intelligence — the paper's motivating scenario
//! (§1, §5.1): an Amazon-scale merchandiser joins its order lines
//! against orders "in real time" on main-memory data, with a selection
//! applied so no index helps.
//!
//! Runs the paper's full query through the `mpsm-exec` pipeline
//! (`scan → select → join → max`) with every join algorithm, and prints
//! the per-phase breakdown.
//!
//! ```sh
//! cargo run --release --example operational_bi
//! ```

use mpsm::baselines::{RadixJoin, WisconsinHashJoin};
use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::JoinConfig;
use mpsm::exec::{paper_query, Relation};
use mpsm::workload::fk_uniform;

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    // Scaled-down Amazon scenario: 256k orders, 4 line items each
    // (the paper runs 1600M × 4 on a 1 TB machine).
    let w = fk_uniform(1 << 18, 4, 2026);
    let orders = Relation::new("orders", w.r);
    let lineitems = Relation::new("lineitems", w.s);
    println!(
        "orders: {} rows, lineitems: {} rows ({} MiB), {threads} workers\n",
        orders.len(),
        lineitems.len(),
        (orders.len() + lineitems.len()) * 16 / (1 << 20),
    );

    // The selection keeps "recent" orders: keys in the upper half of the
    // domain (≈50% selectivity) — the paper applies a selection so that
    // "no referential integrity (foreign keys) or indexes could be
    // exploited".
    let recent = |t: &mpsm::core::Tuple| t.key >= 1 << 31;

    let cfg = JoinConfig::with_threads(threads);
    let mpsm = PMpsmJoin::new(cfg.clone());
    let radix = RadixJoin::new(cfg.clone());
    let wisconsin = WisconsinHashJoin::new(cfg);

    let mut reference = None;
    println!(
        "{:<12} {:>10} {:>10} {:>12}  phases ms",
        "algorithm", "selected R", "selected S", "total ms"
    );
    macro_rules! run {
        ($name:expr, $algo:expr) => {{
            let out = paper_query(&orders, &lineitems, recent, recent, &$algo, threads);
            match &reference {
                None => reference = Some(out.max_payload_sum),
                Some(r) => assert_eq!(*r, out.max_payload_sum, "algorithms must agree"),
            }
            println!(
                "{:<12} {:>10} {:>10} {:>12.1}  {:?}",
                $name,
                out.r_selected,
                out.s_selected,
                out.stats.wall_ms(),
                out.stats.phases_ms().map(|m| m.round()),
            );
        }};
    }
    run!("P-MPSM", mpsm);
    run!("Radix (VW)", radix);
    run!("Wisconsin", wisconsin);

    println!(
        "\nmax(orders.payload + lineitems.payload) over recent orders = {:?}",
        reference.unwrap()
    );
}
