//! Quickstart: join two relations with P-MPSM in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::sink::CollectSink;
use mpsm::core::Tuple;

fn main() {
    // A dimension table: unique keys 0..8, payload = key * 100.
    let customers: Vec<Tuple> = (0..8u64).map(|k| Tuple::new(k, k * 100)).collect();
    // A fact table: each customer referenced twice.
    let orders: Vec<Tuple> = (0..16u64).map(|i| Tuple::new(i % 8, i)).collect();

    // P-MPSM with 4 workers. The first argument is the private input R
    // (by default; `Role::SmallerPrivate` picks automatically).
    let join = PMpsmJoin::new(JoinConfig::with_threads(4));

    // Count matches: every order finds exactly one customer.
    assert_eq!(join.count(&customers, &orders), 16);

    // The paper's benchmark aggregate.
    let max = join.max_payload_sum(&customers, &orders);
    println!("max(R.payload + S.payload) = {max:?}");

    // Or materialize the matches: (key, customer payload, order payload).
    let (mut rows, stats) = join.join_with_sink::<CollectSink>(&customers, &orders);
    rows.sort_unstable();
    println!("first match: {:?}", rows[0]);
    println!(
        "phases [sort S | partition R | sort R | join] = {:?} ms, total {:.2} ms",
        stats.phases_ms().map(|ms| (ms * 100.0).round() / 100.0),
        stats.wall_ms()
    );
    assert_eq!(rows.len(), 16);
}
