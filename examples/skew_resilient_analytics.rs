//! Skew-resilient analytics (paper §4, Figure 16).
//!
//! A marketplace where the *fact* side piles onto cheap, popular items
//! (low keys) while the *dimension* side under analysis is heavy at the
//! high end — negatively correlated skew, the worst case for naive
//! range partitioning. This example contrasts equi-height R splitters
//! with the paper's CDF-driven cost-balanced splitters and prints the
//! per-worker load bars.
//!
//! ```sh
//! cargo run --release --example skew_resilient_analytics
//! ```

use mpsm::core::join::p_mpsm::{PMpsmJoin, SplitterPolicy};
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::sink::CountSink;
use mpsm::workload::skewed_negative_correlation;

fn bar(ms: f64, scale: f64) -> String {
    let n = ((ms / scale) * 40.0).round() as usize;
    "#".repeat(n.min(60))
}

fn main() {
    let threads = 8;
    let w = skewed_negative_correlation(1 << 18, 4, 1 << 20, 7);
    println!(
        "R: {} tuples skewed to the HIGH 20% of the key domain\n\
         S: {} tuples skewed to the LOW  20% — negatively correlated\n",
        w.r.len(),
        w.s.len()
    );

    let cfg = JoinConfig::with_threads(threads).radix_bits(10);
    for (policy, label) in [
        (SplitterPolicy::EquiHeight, "equi-height |R_i| splitters (Figure 16b)"),
        (SplitterPolicy::CostBalanced, "cost-balanced CDF splitters (Figure 16c)"),
    ] {
        let join = PMpsmJoin::new(cfg.clone()).with_splitter_policy(policy);
        let (count, stats) = join.join_with_sink::<CountSink>(&w.r, &w.s);
        let totals = stats.worker_totals_ms();
        let max = totals.iter().cloned().fold(0.0, f64::max);
        println!("{label}");
        println!("  join produced {count} matches in {:.1} ms", stats.wall_ms());
        for (i, t) in totals.iter().enumerate() {
            println!("  W{i}: {:>8.1} ms |{}", t, bar(*t, max));
        }
        println!("  imbalance (slowest / average): {:.2}\n", stats.imbalance());
    }
    println!("(the cost-balanced splitters even out the bars — paper Figure 16)");
}
