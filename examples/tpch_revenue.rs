//! TPC-H-flavored revenue report exploiting MPSM's output order.
//!
//! Joins `orders ⋈ lineitem` (variable 1–7 fan-out, as in TPC-H) with
//! P-MPSM, captures the run-structured join output with
//! `SortedRunsSink`, and aggregates revenue per order with the
//! merge-based `sorted_group_by` — no hash table, no re-sort: the §7
//! "rough sort order" exploitation end to end. Also prints the
//! EXPLAIN plan of the paper's benchmark query over the same data.
//!
//! ```sh
//! cargo run --release --example tpch_revenue
//! ```

use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::sink::SortedRunsSink;
use mpsm::exec::{paper_query, sorted_group_by, Relation, SumAgg};
use mpsm::workload::tpch::{orders_lineitems, reference_revenue};

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let w = orders_lineitems(1 << 16, 2026);
    println!(
        "orders: {} rows, lineitem: {} rows (fan-out 1–7, avg ≈ {:.2})\n",
        w.r.len(),
        w.s.len(),
        w.s.len() as f64 / w.r.len() as f64
    );

    // Join: lineitem prices flow through; the private side carries the
    // customer id. Revenue per order = sum of line prices, which the
    // SortedRunsSink rows expose as (order key, cust_id + price) — we
    // subtract the customer id again during aggregation by folding the
    // price component only; simpler: re-join with zeroed private
    // payloads so row values are pure prices.
    let orders_keys: Vec<mpsm::core::Tuple> =
        w.r.iter().map(|t| mpsm::core::Tuple::new(t.key, 0)).collect();

    let join = PMpsmJoin::new(JoinConfig::with_threads(threads));
    let (runs, stats) = join.join_with_sink::<SortedRunsSink>(&orders_keys, &w.s);
    println!(
        "join produced {} key-ascending runs in {:.1} ms (phase 4: {:.1} ms)",
        runs.len(),
        stats.wall_ms(),
        stats.phases_ms()[3]
    );

    let revenue = sorted_group_by::<SumAgg>(&runs);
    println!("revenue groups: {} orders (sorted by order key, no hash table)", revenue.len());

    // Validate against an independent reference.
    let expected = reference_revenue(&w);
    assert_eq!(revenue, expected, "merge-based aggregation must match the reference");
    let top = revenue.iter().max_by_key(|&&(_, v)| v).expect("non-empty");
    println!("top order: key {} with {} cents of revenue\n", top.0, top.1);

    // EXPLAIN of the paper's benchmark query over the same relations.
    let orders_rel = Relation::new("orders", w.r.clone());
    let lineitem_rel = Relation::new("lineitem", w.s.clone());
    let out = paper_query(&orders_rel, &lineitem_rel, |_| true, |_| true, &join, threads);
    println!("{}", out.plan);
    println!("max(orders.payload + lineitem.payload) = {:?}", out.max_payload_sum);
}
