//! Offline stand-in for the `criterion` crate.
//!
//! The container building this repository cannot reach a crates
//! registry, so the slice of criterion's API used by the benches under
//! `crates/mpsm-bench/benches/` is implemented here: benchmark groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros (`harness = false` targets, as with real
//! criterion).
//!
//! Instead of criterion's statistical machinery, each benchmark is
//! warmed up briefly, timed over a fixed wall-clock budget, and
//! reported as mean time per iteration (plus derived throughput). Good
//! enough to spot order-of-magnitude regressions; not a substitute for
//! real criterion's confidence intervals.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to `criterion_group!` functions.
pub struct Criterion {
    /// Wall-clock measurement budget per benchmark.
    measurement_time: Duration,
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>`: the filter is the first positional
        // arg. Flags are ignored, and a `--flag value` pair's value must
        // not be mistaken for the filter, so skip the token after any
        // `--flag` that does not carry `=value` inline.
        let mut filter = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            if arg.starts_with('-') {
                // Valueless flags cargo/criterion pass to bench
                // executables; anything else is assumed to take the
                // next token as its value.
                let valueless = matches!(arg.as_str(), "--bench" | "--test" | "--quiet" | "-q");
                if !valueless && !arg.contains('=') {
                    if let Some(next) = args.peek() {
                        if !next.starts_with('-') {
                            args.next(); // the flag's value
                        }
                    }
                }
            } else {
                filter = Some(arg);
                break;
            }
        }
        Criterion { measurement_time: Duration::from_millis(300), filter }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.measurement_time = budget;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
            measurement_time: None,
        }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Benchmark identifier: a function name, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Id distinguished only by `parameter`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

/// Things accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self.to_string(), parameter: None }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self, parameter: None }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (accepted, not load-bearing here:
/// every batch size runs setup once per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates following benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the measurement budget for this group only.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measurement_time = Some(budget);
        self
    }

    /// Times `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), |b| f(b));
        self
    }

    /// Times `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_benchmark_id(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let label = if self.name.is_empty() {
            id.render()
        } else {
            format!("{}/{}", self.name, id.render())
        };
        if let Some(filter) = &self.criterion.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            budget: self.measurement_time.unwrap_or(self.criterion.measurement_time),
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(&label, &bencher, self.throughput);
    }

    /// Ends the group (report flushing in real criterion; no-op here).
    pub fn finish(self) {}
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and per-iteration estimate.
        let warm = Instant::now();
        black_box(routine());
        let est = warm.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
        let iters = target.max(self.samples as u64);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` on inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let warm = Instant::now();
        black_box(routine(input));
        let est = warm.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
        let iters = target.max(self.samples as u64);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = iters;
    }

    /// Like `iter_batched`, with the input passed by mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{label:<48} (not measured)");
        return;
    }
    let per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.1} Melem/s", n as f64 / per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MiB/s", n as f64 / per_iter * 1e9 / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{label:<48} {:>12} /iter  ({} iters){rate}", format_ns(per_iter), bencher.iters);
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_counts_iters() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 3, "routine ran only {runs} times");
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("batched", 1), &7u64, |b, &x| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![x; 4]
                },
                |v| {
                    runs += 1;
                    v.iter().sum::<u64>()
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert!(runs >= 1 && setups >= runs, "setup must run per iteration");
    }

    #[test]
    fn group_measurement_time_does_not_leak_to_later_groups() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("fast");
            group.measurement_time(Duration::from_millis(1));
            group.finish();
        }
        assert_eq!(
            c.measurement_time,
            Duration::from_millis(300),
            "group override must stay scoped to its group"
        );
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).render(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").render(), "p");
        assert_eq!("plain".into_benchmark_id().render(), "plain");
    }
}
