//! Offline stand-in for the `parking_lot` crate.
//!
//! The container building this repository has no access to a crates
//! registry, so the subset of `parking_lot`'s API that this workspace
//! uses is re-implemented here over `std::sync`. Semantics match
//! `parking_lot` where they differ from `std`: `lock()` returns the
//! guard directly (no `Result`), and a panicked holder does not poison
//! the lock for later users.

use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive with `parking_lot`'s panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std`, poisoning is ignored: a panic while holding the lock does
    /// not prevent later acquisition.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with `parking_lot`'s panic-transparent API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
