//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification accepted by [`vec()`] (subset of proptest's
/// `SizeRange` conversions: exact, half-open, inclusive).
pub trait IntoSizeRange {
    /// Lower/upper bound, inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "vec size: empty range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "vec size: empty range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s of an element strategy's values.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
