//! Offline stand-in for the `proptest` crate.
//!
//! The container building this repository cannot reach a crates
//! registry, so the slice of proptest's API used by the test suites is
//! implemented here: the [`proptest!`] macro, [`Strategy`] for integer
//! ranges / `any::<T>()` / `collection::vec`, `prop_assert!`-family
//! macros, and [`ProptestConfig`] case counts.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   run's seed instead of a minimized input.
//! * **Fixed deterministic seeding.** Cases are generated from a fixed
//!   base seed (overridable via `PROPTEST_SEED`), so every run and
//!   every CI box sees the same inputs — reproducibility is promoted
//!   from "persisted regression file" to "always".

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Real proptest separates strategies from value trees to support
/// shrinking; without shrinking a strategy is just a seeded generator.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the full domain of `T`, as in `proptest::arbitrary`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — uniform over `T`'s whole domain.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` can produce.
pub trait ArbitraryValue: Sized {
    /// Draws one value covering the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Error type carried by `prop_assert!` failures (message only).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type of a single property-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives the cases of one property. Used by the [`proptest!`]
/// expansion; not public API in real proptest, minimal here.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Runner for `config`, seeded from `PROPTEST_SEED` when set.
    pub fn new(config: ProptestConfig) -> Self {
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x4D50_534D_2012_0510); // "MPSM", PVLDB 5(10) 2012
        TestRunner { config, base_seed }
    }

    /// Runs `case` once per configured case with a per-case RNG; on
    /// failure reports the case index and reproduction seed, then
    /// propagates the failure.
    pub fn run(&mut self, property: &str, mut case: impl FnMut(&mut StdRng) -> TestCaseResult) {
        for i in 0..self.config.cases {
            let case_seed = self.base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(case_seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            let failure = match outcome {
                Ok(Ok(())) => None,
                Ok(Err(TestCaseError(msg))) => Some(msg),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    Some(msg)
                }
            };
            if let Some(msg) = failure {
                panic!(
                    "property `{property}` failed at case {i}/{total} \
                     (reproduce with PROPTEST_SEED={seed}): {msg}",
                    total = self.config.cases,
                    seed = self.base_seed,
                );
            }
        }
    }
}

/// Defines property tests. Supports the grammar the repository uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in 0u64..10, mut v in proptest::collection::vec(any::<u64>(), 0..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "{} (assertion `{}` at {}:{})",
                format!($($fmt)*), stringify!($cond), file!(), line!()
            )));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?} at {}:{}",
                format!($($fmt)*), l, r, file!(), line!()
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case when `cond` is false (counted as a pass; the
/// real proptest retries — good enough without shrinking).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_in_bounds(v in crate::collection::vec(any::<u64>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn nested_vec_and_mut_patterns(
            mut vs in crate::collection::vec(crate::collection::vec(0u32..5, 0..4), 1..5),
        ) {
            vs.push(vec![0]);
            for v in &vs {
                for &x in v {
                    prop_assert!(x < 5);
                }
            }
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let err = std::panic::catch_unwind(|| {
            let mut runner = crate::TestRunner::new(crate::ProptestConfig::with_cases(4));
            runner.run("always_fails", |_| {
                crate::prop_assert!(false, "expected failure");
                Ok(())
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "missing property name: {msg}");
        assert!(msg.contains("PROPTEST_SEED"), "missing seed hint: {msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut collected = Vec::new();
        for _ in 0..2 {
            let mut vals = Vec::new();
            let mut runner = crate::TestRunner::new(crate::ProptestConfig::with_cases(8));
            runner.run("collect", |rng| {
                vals.push(crate::Strategy::generate(&(0u64..1000), rng));
                Ok(())
            });
            collected.push(vals);
        }
        assert_eq!(collected[0], collected[1]);
    }
}
