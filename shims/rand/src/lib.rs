//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The container building this repository cannot reach a crates
//! registry, so the slice of `rand`'s API that the workload generators
//! use is implemented here from scratch: `RngCore`/`Rng`/`SeedableRng`,
//! a deterministic `StdRng` (xoshiro256** seeded via SplitMix64),
//! uniform `gen_range` over integer/float ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The stream is *not* bit-compatible with crates-io `rand`'s `StdRng`
//! (which is ChaCha12) — it is merely deterministic under a seed, which
//! is the property the generators and tests rely on. Every consumer in
//! this repository seeds explicitly; there is no OS entropy source.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface (blanket-implemented for any
/// [`RngCore`], as in `rand` 0.8).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Uniform `[0, 1)` double from 53 random mantissa bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seedable deterministic RNGs (subset of `rand`'s trait: `from_seed`
/// and the convenience `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via SplitMix64 (the same
    /// construction `rand` documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut out = splitmix64(&mut state);
            for byte in chunk.iter_mut() {
                *byte = out as u8;
                out >>= 8;
            }
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (Vigna's reference constants).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // The lerp can round up onto the exclusive bound; clamp to the
        // largest representable value below it (as real rand does).
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        let v = self.start + (self.end - self.start) * unit;
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// Unbiased uniform draw from `[0, span)` via Lemire's widening
/// multiply with rejection; `span > 0`.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Threshold below which the low 64 bits of the product are biased.
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = rng.next_u64() as u128 * span as u128;
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u32..=5);
            assert!((1..=5).contains(&w));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from 10k");
        }
    }

    #[test]
    fn float_range_never_returns_exclusive_bound() {
        let mut r = StdRng::seed_from_u64(11);
        // A one-ULP-wide range forces the lerp onto the bound; the
        // clamp must keep the result strictly below `end`.
        let lo = 1.0f64;
        let hi = 1.0f64.next_up();
        for _ in 0..1000 {
            let v = r.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
