//! Concrete RNGs: a deterministic [`StdRng`] (xoshiro256**).

use crate::{RngCore, SeedableRng};

/// Deterministic general-purpose RNG.
///
/// Implemented as xoshiro256** 1.0 (Blackman & Vigna). Not
/// bit-compatible with crates-io `rand::rngs::StdRng`; see the crate
/// docs for why that is acceptable here.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xBB67_AE85_84CA_A73B, 1];
        }
        StdRng { s }
    }
}

/// Alias offered by `rand` for the same generator family.
pub type SmallRng = StdRng;
