//! Sequence sampling: `SliceRandom::{shuffle, choose}`.

use crate::RngCore;

/// Random operations on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(crate::uniform_u64(rng, self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input untouched");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_hits_all_elements_eventually() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
