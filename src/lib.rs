//! # mpsm — Massively Parallel Sort-Merge Joins
//!
//! Facade crate for the reproduction of *"Massively Parallel Sort-Merge
//! Joins in Main Memory Multi-Core Database Systems"* (Albutiu, Kemper,
//! Neumann; PVLDB 5(10), 2012).
//!
//! The implementation lives in focused sub-crates, re-exported here:
//!
//! * [`core`] — the MPSM join suite (B-MPSM, P-MPSM, D-MPSM), the
//!   three-phase sort, range partitioning, CDF/splitter machinery;
//! * [`numa`] — the simulated NUMA substrate (topology, counters, cost
//!   model, Figure 1 micro-benchmarks);
//! * [`storage`] — the paged run store, page index, prefetcher and
//!   budgeted buffer pool behind D-MPSM;
//! * [`baselines`] — the joins MPSM is compared against (Wisconsin hash
//!   join, radix join, classic sort-merge, nested loop);
//! * [`workload`] — dataset generators for the paper's evaluation;
//! * [`exec`] — a minimal relational executor running the paper's
//!   benchmark query end to end, plus a concurrent query scheduler
//!   ([`exec::sched`] / [`exec::session`]) serving many joins from one
//!   shared worker pool.
//!
//! ## Quickstart
//!
//! ```
//! use mpsm::core::{JoinConfig, Tuple};
//! use mpsm::core::join::p_mpsm::PMpsmJoin;
//! use mpsm::core::sink::CountSink;
//! use mpsm::core::join::JoinAlgorithm;
//!
//! let r: Vec<Tuple> = (0..1000u64).map(|k| Tuple::new(k, k * 10)).collect();
//! let s: Vec<Tuple> = (0..1000u64).map(|k| Tuple::new(k % 500, k)).collect();
//!
//! let config = JoinConfig::with_threads(4);
//! let join = PMpsmJoin::new(config);
//! let (result, _stats) = join.join_with_sink::<CountSink>(&r, &s);
//! assert_eq!(result, 1000); // every s tuple finds exactly one r partner
//! ```

pub use mpsm_baselines as baselines;
pub use mpsm_core as core;
pub use mpsm_exec as exec;
pub use mpsm_numa as numa;
pub use mpsm_storage as storage;
pub use mpsm_workload as workload;
