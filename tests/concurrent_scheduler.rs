//! Concurrency suite for the multi-query scheduler: N concurrent
//! submissions over one shared pool must agree with serial
//! `paper_query` runs, survive a panicking query, and respect the
//! admission budget.

use std::sync::Arc;

use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::JoinConfig;
use mpsm::core::Tuple;
use mpsm::exec::{
    paper_query, JoinSpec, QueryError, QuerySpec, Relation, Scheduler, SchedulerConfig, Session,
};

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 32
    }
}

fn workload() -> (Arc<Relation>, Arc<Relation>) {
    let mut next = lcg(2026);
    let r: Vec<Tuple> = (0..4000).map(|i| Tuple::new(next() % 1024, i)).collect();
    let s: Vec<Tuple> = (0..12000).map(|i| Tuple::new(next() % 1024, i)).collect();
    (Arc::new(Relation::new("R", r)), Arc::new(Relation::new("S", s)))
}

/// The per-query predicates, parameterized by query index so the N
/// queries are genuinely different.
fn preds(i: u64) -> (impl Fn(&Tuple) -> bool + Copy, impl Fn(&Tuple) -> bool + Copy) {
    let modulus = 2 + i % 5;
    (move |t: &Tuple| !t.key.is_multiple_of(modulus), move |t: &Tuple| t.key >= i * 37)
}

#[test]
fn concurrent_submissions_match_serial_runs() {
    let (r, s) = workload();
    // 8 concurrent queries over a 2-wide pool: more clients than
    // workers, so phases of different queries must interleave.
    const N: u64 = 8;
    let serial: Vec<_> = (0..N)
        .map(|i| {
            let (pr, ps) = preds(i);
            paper_query(&r, &s, pr, ps, &PMpsmJoin::new(JoinConfig::with_threads(2)), 2)
        })
        .collect();

    let scheduler =
        Scheduler::new(SchedulerConfig::new(2).max_in_flight(3).queue_capacity(N as usize));
    let tickets: Vec<_> = (0..N)
        .map(|i| {
            let (pr, ps) = preds(i);
            scheduler
                .submit(QuerySpec::join(&r, &s).filter_r(pr).filter_s(ps))
                .expect("within admission budget")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let out = ticket.wait().unwrap_or_else(|e| panic!("query {i} failed: {e}"));
        assert_eq!(out.result.max_payload_sum, serial[i].max_payload_sum, "query {i}");
        assert_eq!(out.result.r_selected, serial[i].r_selected, "query {i}");
        assert_eq!(out.result.s_selected, serial[i].s_selected, "query {i}");
        assert!(out.result.plan.queue_wait_ms.is_some(), "query {i} lacks queue wait");
        assert!(out.result.plan.phases_ms.is_some(), "query {i} lacks phase timings");
    }
    let m = scheduler.metrics();
    assert_eq!((m.submitted, m.completed, m.panicked), (N, N, 0));
}

#[test]
fn panicking_query_is_isolated() {
    let (r, s) = workload();
    let scheduler = Scheduler::new(SchedulerConfig::new(2).max_in_flight(2).queue_capacity(8));
    // Interleave good queries around one whose R predicate panics
    // mid-scan on the shared pool.
    let before = scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted");
    let poison = scheduler
        .submit(QuerySpec::join(&r, &s).filter_r(|t| {
            if t.key == 999 {
                panic!("predicate exploded");
            }
            true
        }))
        .expect("admitted");
    let after = scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted");

    let expected =
        paper_query(&r, &s, |_| true, |_| true, &PMpsmJoin::new(JoinConfig::with_threads(2)), 2);
    match poison.wait() {
        Err(QueryError::Panicked(msg)) => {
            assert!(msg.contains("panicked"), "uniform pool panic message, got {msg:?}")
        }
        other => panic!("poisoned query must fail, got {other:?}"),
    }
    for (name, ticket) in [("before", before), ("after", after)] {
        let out = ticket.wait().unwrap_or_else(|e| panic!("{name} query failed: {e}"));
        assert_eq!(out.result.max_payload_sum, expected.max_payload_sum, "{name}");
    }
    // The scheduler and pool stay serviceable afterwards.
    let again = scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted");
    assert_eq!(
        again.wait().expect("healthy query").result.max_payload_sum,
        expected.max_payload_sum
    );
    assert_eq!(scheduler.metrics().panicked, 1);
}

#[test]
fn session_round_trip_with_mixed_algorithms() {
    let (r, s) = workload();
    let session = Session::new(SchedulerConfig::new(2).max_in_flight(2).queue_capacity(8));
    let r = session.register(Arc::try_unwrap(r).expect("sole owner"));
    let s = session.register(Arc::try_unwrap(s).expect("sole owner"));
    let p = session.query(QuerySpec::join(&r, &s)).expect("P-MPSM");
    let b = session.query(QuerySpec::join(&r, &s).algorithm(JoinSpec::b_mpsm())).expect("B-MPSM");
    assert_eq!(p.result.max_payload_sum, b.result.max_payload_sum);
    assert!(p.result.plan.explain().starts_with("Queue [wait ="), "scheduled EXPLAIN");
    // Catalog lookups resolve the registered handles.
    assert_eq!(session.relation("R").expect("registered").len(), 4000);
}

#[test]
fn phases_of_concurrent_queries_interleave_on_the_pool() {
    let (r, s) = workload();
    let scheduler = Scheduler::new(SchedulerConfig::new(2).max_in_flight(4).queue_capacity(16));
    scheduler.pool().enable_phase_trace();
    let tickets: Vec<_> =
        (0..4).map(|_| scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted")).collect();
    for t in tickets {
        t.wait().expect("query failed");
    }
    let trace = scheduler.pool().take_phase_trace();
    let owners: std::collections::HashSet<u64> = trace.iter().map(|t| t.owner).collect();
    assert_eq!(owners.len(), 4, "each query's phases are tagged with its own id");
    // Each P-MPSM query submits multiple phases (sorts, CDF, histogram,
    // scatter, join) plus two selections.
    assert!(trace.len() >= 4 * 6, "expected many phases, saw {}", trace.len());
}
