//! D-MPSM against the storage substrate: equivalence with the in-memory
//! joins, budget invariance, real files, fault injection.

use mpsm::baselines::nested_loop::oracle_count;
use mpsm::core::join::d_mpsm::{DMpsmConfig, DMpsmJoin};
use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::sink::CountSink;
use mpsm::storage::{FaultyBackend, FileBackend, MemBackend};
use mpsm::workload::{fk_uniform, skewed_negative_correlation};

fn dconfig(threads: usize, page_records: u32, budget: usize) -> DMpsmConfig {
    let mut cfg = DMpsmConfig::with_join(JoinConfig::with_threads(threads));
    cfg.page_records = page_records;
    cfg.budget_pages = budget;
    cfg
}

#[test]
fn dmpsm_equals_pmpsm_on_fk_workloads() {
    for m in [1usize, 4] {
        let w = fk_uniform(2000, m, 3);
        let p = PMpsmJoin::new(JoinConfig::with_threads(4)).count(&w.r, &w.s);
        let d = DMpsmJoin::new(dconfig(4, 128, 16)).count(&w.r, &w.s);
        assert_eq!(p, d, "multiplicity {m}");
    }
}

#[test]
fn budget_does_not_change_results_only_residency() {
    let w = fk_uniform(4000, 4, 7);
    let mut last = None;
    let mut hwms = Vec::new();
    for budget in [8usize, 32, 4096] {
        let join = DMpsmJoin::new(dconfig(4, 64, budget));
        let (count, _stats, report) =
            join.join_on::<MemBackend, CountSink>(MemBackend::disk_array(), &w.r, &w.s).unwrap();
        if let Some(prev) = last {
            assert_eq!(prev, count, "budget {budget} changed the result");
        }
        last = Some(count);
        hwms.push(report.buffer.high_water_pages);
    }
    assert!(hwms[0] <= hwms[2], "tighter budgets must not increase residency: {hwms:?}");
}

#[test]
fn skewed_data_is_no_problem_for_dmpsm() {
    // D-MPSM is "completely skew immune" (§4).
    let w = skewed_negative_correlation(1500, 4, 1 << 16, 21);
    let expected = oracle_count(&w.r, &w.s);
    let d = DMpsmJoin::new(dconfig(4, 64, 24));
    assert_eq!(d.count(&w.r, &w.s), expected);
}

#[test]
fn file_backend_roundtrip_at_scale() {
    let dir = std::env::temp_dir().join(format!("mpsm-it-dmpsm-{}", std::process::id()));
    let w = fk_uniform(3000, 2, 5);
    let join = DMpsmJoin::new(dconfig(3, 256, 32));
    let (count, _, report) = join
        .join_on::<FileBackend, CountSink>(FileBackend::new(&dir).unwrap(), &w.r, &w.s)
        .unwrap();
    assert_eq!(count, 6000);
    assert!(report.bytes_written >= (3000 + 6000) * 16, "both inputs spooled");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_faults_surface_as_errors_not_corruption() {
    let w = fk_uniform(1000, 2, 9);
    for fail_at in [0u64, 5, 50] {
        let backend = FaultyBackend::new(MemBackend::disk_array(), vec![fail_at]);
        let join = DMpsmJoin::new(dconfig(2, 64, 16));
        match join.join_on::<_, CountSink>(backend, &w.r, &w.s) {
            Err(_) => {} // surfaced, good
            Ok((count, _, _)) => {
                // The prefetcher may absorb a fault by leaving the page
                // to a (successful) demand read; the result must then be
                // exactly correct.
                assert_eq!(count, 2000, "fault at read #{fail_at} corrupted the result");
            }
        }
    }
}

#[test]
fn simulated_io_is_accounted() {
    let w = fk_uniform(2000, 1, 11);
    let join = DMpsmJoin::new(dconfig(2, 64, 16));
    let (_, _, report) =
        join.join_on::<MemBackend, CountSink>(MemBackend::disk_array(), &w.r, &w.s).unwrap();
    assert!(report.simulated_io_ms > 0.0);
    assert!(report.bytes_read >= report.bytes_written, "every page is read at least once");
}
