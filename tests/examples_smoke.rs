//! Builds every example and runs `quickstart` to completion.
//!
//! `cargo test` does not build example targets by itself, so a broken
//! example would otherwise only surface in CI's `cargo build --examples`
//! step; this suite makes the tier-1 `cargo test -q` catch it too.

use std::path::Path;
use std::process::Command;

/// All examples registered in Cargo.toml, in `examples/`.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "concurrent_clients",
    "memory_constrained_join",
    "numa_commandments",
    "numa_placement",
    "operational_bi",
    "skew_resilient_analytics",
    "tpch_revenue",
];

fn cargo() -> Command {
    let mut cmd = Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()));
    // Run against this same workspace no matter where the test binary lives.
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn all_examples_build() {
    for example in EXAMPLES {
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("examples/{example}.rs")).exists(),
            "example source missing: {example}"
        );
    }
    let output = cargo()
        .args(["build", "--examples"])
        .output()
        .expect("failed to spawn cargo build --examples");
    assert!(
        output.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let output = cargo()
        .args(["run", "--example", "quickstart"])
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    assert!(
        output.status.success(),
        "quickstart exited nonzero:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}
