//! Snapshot-isolation torture suite for mutable relations.
//!
//! Three angles on the same contract — a query joins **exactly** the
//! state its snapshot captured, no matter what writes, re-registrations
//! or compactions happen around it:
//!
//! 1. randomized sequential interleavings of appends / updates /
//!    deletes / compactions / queries, checked against a replayed
//!    model of the relation at each query point;
//! 2. delta-merge equivalence over the same six adversarial key
//!    distributions the sort-kernel suite uses (uniform, all-equal,
//!    near-`u64::MAX`, presorted, reversed, zipf-skewed) — the delta
//!    path must agree with a nested-loop join over the materialized
//!    union, before and after compaction;
//! 3. genuinely concurrent writers + background compactor vs. racing
//!    analytic readers, where every answer must describe a consistent
//!    write prefix (cardinality and content must agree on *how many*
//!    writes the snapshot saw).

use mpsm::core::Tuple;
use mpsm::exec::{CompactionConfig, QuerySpec, Relation, RunCacheConfig, SchedulerConfig, Session};
use proptest::prelude::*;

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 32
    }
}

/// `max(r.payload + s.payload)` over the equi-join, by nested loop —
/// the oracle every executor answer is compared against.
fn oracle_max(r: &[Tuple], s: &[Tuple]) -> Option<u64> {
    let mut max = None;
    for rt in r {
        for st in s {
            if rt.key == st.key {
                let sum = rt.payload + st.payload;
                if max.is_none_or(|m| sum > m) {
                    max = Some(sum);
                }
            }
        }
    }
    max
}

/// The model's replay of one write against a materialized relation —
/// must mirror `Session::{append, update, delete}` semantics exactly.
#[derive(Debug, Clone)]
enum ModelWrite {
    Append(Tuple),
    Update { key: u64, payload: u64 },
    Delete { key: u64 },
}

fn apply_model(state: &mut Vec<Tuple>, write: &ModelWrite) {
    match write {
        ModelWrite::Append(t) => state.push(*t),
        ModelWrite::Update { key, payload } => {
            state.retain(|t| t.key != *key);
            state.push(Tuple::new(*key, *payload));
        }
        ModelWrite::Delete { key } => state.retain(|t| t.key != *key),
    }
}

/// The six adversarial key distributions from `tests/sort_kernels.rs`.
fn keys_for(dist: usize, n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    match dist % 6 {
        0 => (0..n).map(|_| next()).collect(),
        1 => vec![u64::MAX - (seed % 3); n],
        2 => (0..n).map(|i| u64::MAX - (i as u64 % 2)).collect(),
        3 => (0..n).map(|i| i as u64 * 37).collect(),
        4 => (0..n).map(|i| (n - i) as u64 * 37).collect(),
        5 => (0..n).map(|_| 1u64 << (next() % 60)).collect(),
        _ => unreachable!(),
    }
}

/// A session whose compactor only runs when the test says so.
fn manual_session(threads: usize) -> Session {
    Session::with_compaction(
        SchedulerConfig::new(threads),
        RunCacheConfig::default(),
        CompactionConfig::manual(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings of writes, compactions and queries against
    /// a replayed model: at every query point the executor must join
    /// exactly the model's current state — and folding the delta at an
    /// arbitrary point must never change any later answer.
    #[test]
    fn random_write_interleavings_agree_with_a_replayed_model(
        ops in proptest::collection::vec(any::<u64>(), 8..48),
        seed in any::<u64>(),
    ) {
        let n = 96u64;
        let key_space = 128u64;
        let session = manual_session(2);
        let r = session.register(Relation::new(
            "R",
            (0..n).map(|k| Tuple::new(k, k)).collect(),
        ));
        let s_data: Vec<Tuple> = (0..n).map(|k| Tuple::new(k, 10_000 + k)).collect();
        let s = session.register(Relation::new("S", s_data.clone()));

        let mut model: Vec<Tuple> = (0..n).map(|k| Tuple::new(k, k)).collect();
        let mut next = lcg(seed);
        for (step, w) in ops.iter().enumerate() {
            match w % 5 {
                0 => {
                    let t = Tuple::new(next() % key_space, next() % 1_000_000);
                    session.append("R", [t]).expect("R is registered");
                    apply_model(&mut model, &ModelWrite::Append(t));
                }
                1 => {
                    let (key, payload) = (next() % key_space, next() % 1_000_000);
                    session.update("R", key, payload).expect("R is registered");
                    apply_model(&mut model, &ModelWrite::Update { key, payload });
                }
                2 => {
                    let key = next() % key_space;
                    session.delete("R", key).expect("R is registered");
                    apply_model(&mut model, &ModelWrite::Delete { key });
                }
                3 => {
                    // Folding the delta is invisible to answers; it only
                    // bumps the base version under the hood.
                    session.compact("R");
                }
                _ => {
                    let out = session
                        .query(QuerySpec::join(&r, &s))
                        .expect("query failed")
                        .result;
                    prop_assert_eq!(
                        out.max_payload_sum,
                        oracle_max(&model, &s_data),
                        "step {}: answer diverged from the replayed model",
                        step
                    );
                    prop_assert_eq!(
                        out.r_selected,
                        model.len(),
                        "step {}: logical cardinality diverged",
                        step
                    );
                }
            }
        }
        // Final checks: drain the delta and ask once more.
        session.compact("R");
        prop_assert_eq!(session.delta_len("R"), Some(0));
        let out = session.query(QuerySpec::join(&r, &s)).expect("final query").result;
        prop_assert_eq!(out.max_payload_sum, oracle_max(&model, &s_data));
        prop_assert_eq!(out.r_selected, model.len());
    }

    /// Delta-merge equivalence over the six sort-kernel distributions:
    /// with both sides drawn from an adversarial key distribution and
    /// a random batch of writes applied to R, the executor's answer
    /// must match the nested-loop oracle over the materialized state —
    /// with the delta live, and again after compaction folds it.
    #[test]
    fn delta_merge_matches_oracle_across_distributions(
        dist in 0usize..6,
        seed in any::<u64>(),
        write_count in 1usize..48,
    ) {
        let n = 160;
        let r_keys = keys_for(dist, n, seed ^ 0xA11CE);
        let s_keys = keys_for(dist, n, seed ^ 0xB0B);
        let r_data: Vec<Tuple> =
            r_keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect();
        let s_data: Vec<Tuple> =
            s_keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, 5_000 + i as u64)).collect();

        let session = manual_session(2);
        let r = session.register(Relation::new("R", r_data.clone()));
        let s = session.register(Relation::new("S", s_data.clone()));

        // Writes target keys from the same distribution so deletes and
        // updates actually hit base tuples (fresh keys exercise pure
        // appends).
        let mut model = r_data;
        let mut next = lcg(seed | 0x10);
        for _ in 0..write_count {
            let key = if next().is_multiple_of(2) {
                r_keys[(next() as usize) % r_keys.len()]
            } else {
                next()
            };
            let write = match next() % 3 {
                0 => ModelWrite::Append(Tuple::new(key, next() % 1_000)),
                1 => ModelWrite::Update { key, payload: next() % 1_000 },
                _ => ModelWrite::Delete { key },
            };
            match &write {
                ModelWrite::Append(t) => {
                    session.append("R", [*t]).expect("registered");
                }
                ModelWrite::Update { key, payload } => {
                    session.update("R", *key, *payload).expect("registered");
                }
                ModelWrite::Delete { key } => {
                    session.delete("R", *key).expect("registered");
                }
            }
            apply_model(&mut model, &write);
        }
        let expect = oracle_max(&model, &s_data);

        let live = session.query(QuerySpec::join(&r, &s)).expect("live-delta query").result;
        prop_assert_eq!(live.max_payload_sum, expect, "live delta diverged (dist {})", dist);
        prop_assert_eq!(live.r_selected, model.len());

        session.compact("R");
        prop_assert_eq!(session.delta_len("R"), Some(0));
        let folded = session.query(QuerySpec::join(&r, &s)).expect("post-compaction").result;
        prop_assert_eq!(folded.max_payload_sum, expect, "compaction changed the answer");
        let fresh = session.relation("R").expect("resolves");
        let refreshed =
            session.query(QuerySpec::join(&fresh, &s)).expect("fresh handle").result;
        prop_assert_eq!(refreshed.max_payload_sum, expect, "fresh handle diverged");
    }
}

/// A snapshot captured before a write must keep answering from its
/// pre-write world even after the write, a compaction, *and* a
/// re-registration of the name have all landed.
#[test]
fn snapshots_pin_their_world_through_writes_compaction_and_reregistration() {
    let n = 200u64;
    let session = manual_session(2);
    let r1 = session.register(Relation::new("R", (0..n).map(|k| Tuple::new(k, k)).collect()));
    let s = session.register(Relation::new("S", (0..n).map(|k| Tuple::new(k, k)).collect()));
    let clean_max = Some(2 * (n - 1));

    session.append("R", [Tuple::new(n - 1, 77_777)]).expect("registered");
    let dirty = session.query(QuerySpec::join(&r1, &s)).expect("dirty").result;
    assert_eq!(dirty.max_payload_sum, Some(77_777 + n - 1));

    assert!(session.compact("R"), "delta folds");
    let r2 = session.relation("R").expect("resolves");
    assert_eq!(r2.version(), 2);

    // Re-register the name with different contents entirely.
    let r3 = session
        .register(Relation::new("R", (0..n).map(|k| Tuple::new(k, 1_000_000 + k)).collect()));
    assert_eq!(r3.version(), 3);

    // Every captured handle still answers for exactly its own world.
    let via_r1 = session.query(QuerySpec::join(&r1, &s)).expect("v1 handle").result;
    assert_eq!(via_r1.max_payload_sum, Some(77_777 + n - 1), "v1 pins base + its delta prefix");
    let via_r2 = session.query(QuerySpec::join(&r2, &s)).expect("v2 handle").result;
    assert_eq!(via_r2.max_payload_sum, Some(77_777 + n - 1), "v2 is the folded same world");
    let via_r3 = session.query(QuerySpec::join(&r3, &s)).expect("v3 handle").result;
    assert_eq!(via_r3.max_payload_sum, Some(1_000_000 + 2 * (n - 1)));
    let _ = clean_max;
}

/// Concurrent writers + background compactor vs. racing readers. The
/// writer appends strictly increasing payloads onto one key, so every
/// answer reveals exactly how many appends the query's snapshot saw —
/// and the reported cardinality must agree with that count (a torn
/// snapshot shows up as a cardinality/content mismatch), and the
/// visible prefix must never shrink between a reader's own queries.
#[test]
fn racing_readers_see_consistent_monotone_write_prefixes() {
    let n = 512u64;
    let appends = 160u64;
    let session = Session::with_compaction(
        SchedulerConfig::new(2).max_in_flight(4).queue_capacity(256),
        RunCacheConfig::default(),
        CompactionConfig::default().threshold(24).interval(std::time::Duration::from_millis(1)),
    );
    let r = session.register(Relation::new("R", (0..n).map(|k| Tuple::new(k, k)).collect()));
    let s = session.register(Relation::new("S", (0..n).map(|k| Tuple::new(k, k)).collect()));
    let base_max = 2 * (n - 1);

    std::thread::scope(|scope| {
        let session_ref = &session;
        let writer = scope.spawn(move || {
            // Append i carries payload base_max + i + 1 on key 0 (S has
            // key 0 / payload 0): after k appends the true max is
            // base_max + k, so answers decode k exactly.
            for i in 0..appends {
                session_ref.append("R", [Tuple::new(0, base_max + i + 1)]).expect("registered");
                if i % 16 == 0 {
                    std::thread::yield_now();
                }
            }
        });
        for reader in 0..3 {
            let (session, r, s) = (&session, &r, &s);
            scope.spawn(move || {
                let mut last_seen = 0u64;
                for round in 0..12 {
                    let out = session
                        .query(QuerySpec::join(r, s))
                        .unwrap_or_else(|e| panic!("reader {reader} round {round}: {e}"));
                    let max = out.result.max_payload_sum.expect("join never empty");
                    assert!(max >= base_max, "reader {reader} lost base tuples");
                    let k = max - base_max;
                    assert!(k <= appends, "reader {reader} saw phantom appends: {k}");
                    assert_eq!(
                        out.result.r_selected as u64,
                        n + k,
                        "reader {reader} round {round}: cardinality says a different \
                         prefix than the content (torn snapshot)"
                    );
                    assert!(
                        k >= last_seen,
                        "reader {reader}: visible prefix shrank {last_seen} -> {k}"
                    );
                    last_seen = k;
                }
            });
        }
        writer.join().expect("writer panicked");
    });

    // Quiesce: fold everything and confirm the final state holds every
    // append exactly once.
    while session.delta_len("R").unwrap_or(0) > 0 {
        session.compact("R");
    }
    let out = session.query(QuerySpec::join(&r, &s)).expect("final query").result;
    assert_eq!(out.max_payload_sum, Some(base_max + appends));
    assert_eq!(out.r_selected as u64, n + appends);
    assert_eq!(session.relation("R").expect("resolves").len() as u64, n + appends);
}

/// Deletes and updates racing a reader can only ever expose prefix
/// states: with writes that alternately delete and restore the same
/// key, every answer must be one of the two legal worlds — never a
/// blend.
#[test]
fn delete_restore_races_expose_only_legal_worlds() {
    let n = 256u64;
    let session = Session::with_compaction(
        SchedulerConfig::new(2),
        RunCacheConfig::default(),
        CompactionConfig::default().threshold(16).interval(std::time::Duration::from_millis(1)),
    );
    let r = session.register(Relation::new("R", (0..n).map(|k| Tuple::new(k, k)).collect()));
    let s = session.register(Relation::new("S", (0..n).map(|k| Tuple::new(k, k)).collect()));
    // Two legal worlds: key n-1 present with payload n-1 (max =
    // 2(n-1)) or updated to 9999 (max = 9999 + n-1). A delete
    // immediately followed by an update(9999) and then an
    // update(n-1)... cycles between them.
    let with_update = 9_999 + (n - 1);
    let without = 2 * (n - 1);

    std::thread::scope(|scope| {
        let session_ref = &session;
        let writer = scope.spawn(move || {
            for round in 0..60u64 {
                if round % 2 == 0 {
                    session_ref.update("R", n - 1, 9_999).expect("registered");
                } else {
                    session_ref.update("R", n - 1, n - 1).expect("registered");
                }
            }
        });
        for reader in 0..2 {
            let (session, r, s) = (&session, &r, &s);
            scope.spawn(move || {
                for round in 0..10 {
                    let out = session
                        .query(QuerySpec::join(r, s))
                        .unwrap_or_else(|e| panic!("reader {reader} round {round}: {e}"));
                    let max = out.result.max_payload_sum.expect("join never empty");
                    assert!(
                        max == with_update || max == without,
                        "reader {reader} round {round}: illegal blended world, max = {max}"
                    );
                    assert_eq!(
                        out.result.r_selected as u64, n,
                        "updates replace — cardinality never changes"
                    );
                }
            });
        }
        writer.join().expect("writer panicked");
    });
}
