//! The §7 extensions: outer / semi / anti variants, band joins, and the
//! sort-based early aggregation over MPSM's run-structured output.

use std::collections::{HashMap, HashSet};

use mpsm::core::join::b_mpsm::BMpsmJoin;
use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::variant::JoinVariant;
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::sink::{CollectSink, CountSink, SortedRunsSink, NULL_PAYLOAD};
use mpsm::core::Tuple;
use mpsm::exec::{sorted_group_by, CountAgg, SumAgg};
use mpsm::workload::{fk_uniform, uniform_independent};

fn reference_variant_count(variant: JoinVariant, r: &[Tuple], s: &[Tuple]) -> u64 {
    let s_keys: HashSet<u64> = s.iter().map(|t| t.key).collect();
    let inner: u64 = r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum();
    let matched = r.iter().filter(|rt| s_keys.contains(&rt.key)).count() as u64;
    let unmatched = r.len() as u64 - matched;
    match variant {
        JoinVariant::Inner => inner,
        JoinVariant::LeftOuter => inner + unmatched,
        JoinVariant::LeftSemi => matched,
        JoinVariant::LeftAnti => unmatched,
    }
}

#[test]
fn variants_match_reference_on_both_mpsm_topologies() {
    let w = uniform_independent(700, 1400, 400, 3);
    for threads in [1usize, 4, 8] {
        let cfg = JoinConfig::with_threads(threads);
        let p = PMpsmJoin::new(cfg.clone());
        let b = BMpsmJoin::new(cfg);
        for variant in [
            JoinVariant::Inner,
            JoinVariant::LeftOuter,
            JoinVariant::LeftSemi,
            JoinVariant::LeftAnti,
        ] {
            let expected = reference_variant_count(variant, &w.r, &w.s);
            let (pc, _) = p.join_variant_with_sink::<CountSink>(variant, &w.r, &w.s);
            let (bc, _) = b.join_variant_with_sink::<CountSink>(variant, &w.r, &w.s);
            assert_eq!(pc, expected, "P-MPSM {variant:?} with {threads} threads");
            assert_eq!(bc, expected, "B-MPSM {variant:?} with {threads} threads");
        }
    }
}

#[test]
fn outer_join_pads_with_null_sentinel() {
    let r: Vec<Tuple> = vec![Tuple::new(1, 10), Tuple::new(2, 20)];
    let s: Vec<Tuple> = vec![Tuple::new(1, 100)];
    let join = PMpsmJoin::new(JoinConfig::with_threads(2));
    let (mut rows, _) = join.join_variant_with_sink::<CollectSink>(JoinVariant::LeftOuter, &r, &s);
    rows.sort_unstable();
    assert_eq!(rows, vec![(1, 10, 100), (2, 20, NULL_PAYLOAD)]);
}

#[test]
fn semi_join_emits_each_private_tuple_at_most_once() {
    // Key 5 has three partners: semi must still emit r once.
    let r: Vec<Tuple> = vec![Tuple::new(5, 1), Tuple::new(6, 2)];
    let s: Vec<Tuple> = vec![Tuple::new(5, 0), Tuple::new(5, 0), Tuple::new(5, 0)];
    let join = PMpsmJoin::new(JoinConfig::with_threads(2));
    let (rows, _) = join.join_variant_with_sink::<CollectSink>(JoinVariant::LeftSemi, &r, &s);
    assert_eq!(rows, vec![(5, 1, NULL_PAYLOAD)]);
}

#[test]
fn anti_join_complements_semi() {
    let w = fk_uniform(500, 1, 9);
    // Drop half of S so half of R is unmatched.
    let s_half: Vec<Tuple> = w.s.iter().copied().filter(|t| t.key % 2 == 0).collect();
    let join = PMpsmJoin::new(JoinConfig::with_threads(4));
    let (semi, _) = join.join_variant_with_sink::<CountSink>(JoinVariant::LeftSemi, &w.r, &s_half);
    let (anti, _) = join.join_variant_with_sink::<CountSink>(JoinVariant::LeftAnti, &w.r, &s_half);
    assert_eq!(semi + anti, 500, "semi and anti partition R");
}

#[test]
fn band_join_matches_reference() {
    let w = uniform_independent(300, 600, 10_000, 11);
    let join = BMpsmJoin::new(JoinConfig::with_threads(4));
    for delta in [0u64, 3, 50] {
        let expected: u64 =
            w.r.iter()
                .map(|rt| w.s.iter().filter(|st| st.key.abs_diff(rt.key) <= delta).count() as u64)
                .sum();
        let (count, _) = join.band_join_with_sink::<CountSink>(delta, &w.r, &w.s);
        assert_eq!(count, expected, "delta {delta}");
    }
}

#[test]
fn band_join_delta_zero_equals_equi_join() {
    let w = uniform_independent(400, 800, 300, 13);
    let join = BMpsmJoin::new(JoinConfig::with_threads(4));
    let (band, _) = join.band_join_with_sink::<CountSink>(0, &w.r, &w.s);
    assert_eq!(band, join.count(&w.r, &w.s));
}

#[test]
fn sorted_runs_flow_into_group_by() {
    // The §7 "rough sort order" exploitation: P-MPSM output runs feed a
    // merge-based group-by whose result must equal a hash-based one.
    let w = fk_uniform(2000, 4, 17);
    let join = PMpsmJoin::new(JoinConfig::with_threads(4));
    let (runs, _) = join.join_with_sink::<SortedRunsSink>(&w.r, &w.s);

    // Every run must be key-ascending (the physical property).
    for run in &runs {
        assert!(run.windows(2).all(|p| p[0].0 <= p[1].0), "run not sorted");
    }
    // With range partitioning, a worker emits at most T runs.
    assert!(runs.len() <= 4 * 4, "too many runs: {}", runs.len());

    let sums = sorted_group_by::<SumAgg>(&runs);
    let counts = sorted_group_by::<CountAgg>(&runs);

    // Hash-based reference over the raw join.
    let mut ref_sums: HashMap<u64, u64> = HashMap::new();
    let mut ref_counts: HashMap<u64, u64> = HashMap::new();
    for rt in &w.r {
        for st in w.s.iter().filter(|st| st.key == rt.key) {
            *ref_sums.entry(rt.key).or_default() = ref_sums
                .get(&rt.key)
                .copied()
                .unwrap_or(0)
                .wrapping_add(rt.payload.wrapping_add(st.payload));
            *ref_counts.entry(rt.key).or_default() += 1;
        }
    }
    assert_eq!(sums.len(), ref_sums.len());
    for (k, v) in &sums {
        assert_eq!(ref_sums[k], *v, "sum for key {k}");
    }
    for (k, v) in &counts {
        assert_eq!(ref_counts[k], *v, "count for key {k}");
    }
    // And the output is globally key-sorted.
    assert!(sums.windows(2).all(|p| p[0].0 < p[1].0));
}
