//! Cross-crate integration: every join implementation must agree with
//! the nested-loop/sort-count oracles on every workload shape of the
//! paper's evaluation.

use mpsm::baselines::nested_loop::{nested_loop_count, oracle_count, oracle_max_payload_sum};
use mpsm::baselines::{ClassicSortMergeJoin, RadixJoin, WisconsinHashJoin};
use mpsm::core::join::b_mpsm::BMpsmJoin;
use mpsm::core::join::d_mpsm::{DMpsmConfig, DMpsmJoin};
use mpsm::core::join::p_mpsm::{PMpsmJoin, SplitterPolicy};
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::Tuple;
use mpsm::workload::{
    apply_location_skew, fk_uniform, skewed_negative_correlation, uniform_independent, ZipfSampler,
};

/// Run `check` for every algorithm in the suite.
fn for_all_algorithms(
    threads: usize,
    mut check: impl FnMut(&str, &dyn Fn(&[Tuple], &[Tuple]) -> u64),
) {
    let cfg = JoinConfig::with_threads(threads);
    let p = PMpsmJoin::new(cfg.clone());
    check("P-MPSM", &|r, s| p.count(r, s));
    let p_eq = PMpsmJoin::new(cfg.clone()).with_splitter_policy(SplitterPolicy::EquiHeight);
    check("P-MPSM/equi-height", &|r, s| p_eq.count(r, s));
    let b = BMpsmJoin::new(cfg.clone());
    check("B-MPSM", &|r, s| b.count(r, s));
    let mut dcfg = DMpsmConfig::with_join(cfg.clone());
    dcfg.page_records = 64;
    dcfg.budget_pages = 16;
    let d = DMpsmJoin::new(dcfg);
    check("D-MPSM", &|r, s| d.count(r, s));
    let radix = RadixJoin::new(cfg.clone());
    check("Radix", &|r, s| radix.count(r, s));
    let wisconsin = WisconsinHashJoin::new(cfg.clone());
    check("Wisconsin", &|r, s| wisconsin.count(r, s));
    let classic = ClassicSortMergeJoin::new(cfg);
    check("ClassicSMJ", &|r, s| classic.count(r, s));
}

#[test]
fn uniform_fk_workloads() {
    for m in [1usize, 4, 8] {
        let w = fk_uniform(1500, m, 42);
        let expected = oracle_count(&w.r, &w.s);
        assert_eq!(expected, (1500 * m) as u64, "FK multiplicity join cardinality");
        for_all_algorithms(4, |name, join| {
            assert_eq!(join(&w.r, &w.s), expected, "{name} at multiplicity {m}");
        });
    }
}

#[test]
fn independent_uniform_with_collisions() {
    let w = uniform_independent(1200, 3600, 500, 7);
    let expected = oracle_count(&w.r, &w.s);
    assert!(expected > 0, "dense domain must collide");
    for_all_algorithms(3, |name, join| {
        assert_eq!(join(&w.r, &w.s), expected, "{name}");
    });
}

#[test]
fn negatively_correlated_skew() {
    let w = skewed_negative_correlation(1000, 4, 1 << 16, 13);
    let expected = oracle_count(&w.r, &w.s);
    for_all_algorithms(4, |name, join| {
        assert_eq!(join(&w.r, &w.s), expected, "{name}");
    });
}

#[test]
fn zipf_skewed_keys() {
    let z = ZipfSampler::new(200, 1.1);
    let r = z.tuples(800, 1 << 14, 3);
    let s = z.tuples(2400, 1 << 14, 4);
    let expected = oracle_count(&r, &s);
    assert!(expected > 0);
    for_all_algorithms(4, |name, join| {
        assert_eq!(join(&r, &s), expected, "{name}");
    });
}

#[test]
fn location_skewed_public_input() {
    let mut w = fk_uniform(1000, 4, 17);
    let expected = oracle_count(&w.r, &w.s);
    apply_location_skew(&mut w.s, 4, 19);
    for_all_algorithms(4, |name, join| {
        assert_eq!(join(&w.r, &w.s), expected, "{name} after location skew");
    });
}

#[test]
fn degenerate_shapes() {
    let one = vec![Tuple::new(5, 1)];
    let dup = vec![Tuple::new(5, 2), Tuple::new(5, 3)];
    let empty: Vec<Tuple> = vec![];
    for_all_algorithms(4, |name, join| {
        assert_eq!(join(&empty, &empty), 0, "{name} empty");
        assert_eq!(join(&one, &empty), 0, "{name} right-empty");
        assert_eq!(join(&empty, &one), 0, "{name} left-empty");
        assert_eq!(join(&one, &dup), 2, "{name} duplicates");
        assert_eq!(join(&one, &one), 1, "{name} singleton");
    });
}

#[test]
fn all_equal_keys_cross_product() {
    let r: Vec<Tuple> = (0..120).map(|i| Tuple::new(7, i)).collect();
    let s: Vec<Tuple> = (0..77).map(|i| Tuple::new(7, i)).collect();
    for_all_algorithms(8, |name, join| {
        assert_eq!(join(&r, &s), 120 * 77, "{name} total cross product");
    });
}

#[test]
fn more_threads_than_tuples() {
    let w = fk_uniform(5, 2, 23);
    let expected = oracle_count(&w.r, &w.s);
    for_all_algorithms(16, |name, join| {
        assert_eq!(join(&w.r, &w.s), expected, "{name} with 16 threads over 5 tuples");
    });
}

#[test]
fn max_payload_sum_agrees_with_oracle() {
    let w = uniform_independent(300, 900, 200, 29);
    let expected = oracle_max_payload_sum(&w.r, &w.s);
    let cfg = JoinConfig::with_threads(4);
    assert_eq!(PMpsmJoin::new(cfg.clone()).max_payload_sum(&w.r, &w.s), expected);
    assert_eq!(BMpsmJoin::new(cfg.clone()).max_payload_sum(&w.r, &w.s), expected);
    assert_eq!(WisconsinHashJoin::new(cfg.clone()).max_payload_sum(&w.r, &w.s), expected);
    assert_eq!(RadixJoin::new(cfg).max_payload_sum(&w.r, &w.s), expected);
}

#[test]
fn nested_loop_oracles_are_consistent() {
    let w = uniform_independent(200, 400, 64, 31);
    assert_eq!(nested_loop_count(&w.r, &w.s), oracle_count(&w.r, &w.s));
}
