//! Property-based accounting invariants of [`mpsm::core::ExecContext`]:
//! the per-phase local/remote counter totals must equal the tuple
//! traffic the documented access model predicts, across worker counts
//! and topologies — so the audit can neither double-count nor lose
//! accesses, whatever machine shape it runs on.
//!
//! The model (see `mpsm_core::context` docs): base relations are
//! interleaved; a sort phase on a chunk of `n` tuples records
//! `n` (chunk read) + `n` (run write) + `2n` (in-place sort) = `4n`
//! accesses; P-MPSM's partition phase records `n` (min/max scan) +
//! `n` (histogram) + `n` (scatter histogram) + `2n` (scatter
//! read/write) = `5n`; the private-partition sort records `2n`; merge
//! phases record actual scan extents (data-dependent, bounded by the
//! full-scan worst case).

use mpsm::baselines::nested_loop::oracle_count;
use mpsm::core::context::{AllocPolicy, ExecContext};
use mpsm::core::join::b_mpsm::BMpsmJoin;
use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::sink::CountSink;
use mpsm::core::worker::WorkerPlacement;
use mpsm::core::{Phase, Tuple};
use mpsm::numa::{AccessCounters, AccessKind, NodeId, Topology};
use proptest::prelude::*;
use proptest::TestCaseError;

fn tuples(keys: Vec<u64>) -> Vec<Tuple> {
    keys.into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect()
}

/// local + remote must cover every access, in every phase.
fn assert_conserved(c: &AccessCounters) -> Result<(), TestCaseError> {
    let local = c.accesses(AccessKind::LocalSeq) + c.accesses(AccessKind::LocalRand);
    let remote = c.accesses(AccessKind::RemoteSeq) + c.accesses(AccessKind::RemoteRand);
    prop_assert_eq!(local + remote, c.total_accesses());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bmpsm_phase_totals_match_the_model(
        r_keys in proptest::collection::vec(any::<u64>(), 0..600),
        s_keys in proptest::collection::vec(any::<u64>(), 0..900),
        threads in 1usize..7,
        nodes in 1u32..5,
    ) {
        let r = tuples(r_keys);
        let s = tuples(s_keys);
        let topology = Topology { nodes, cores_per_node: 4, smt: 1 };
        let cx = ExecContext::new(topology, threads);
        let join = BMpsmJoin::new(JoinConfig::with_threads(threads));
        let (count, _) = join.join_in::<CountSink>(&cx, &r, &s);
        prop_assert_eq!(count, oracle_count(&r, &s));

        let t = threads as u64;
        let p1 = cx.phase_counters(Phase::One);
        let p2 = cx.phase_counters(Phase::Two);
        let p3 = cx.phase_counters(Phase::Three);
        // Sort phases are exact: chunk read + run write + in-place sort.
        prop_assert_eq!(p1.total_accesses(), 4 * s.len() as u64);
        prop_assert_eq!(p2.total_accesses(), 4 * r.len() as u64);
        // Merge phase: actual scan extents, never more than every
        // worker fully scanning its own run (T×) plus all public runs.
        prop_assert!(p3.total_accesses() <= t * (r.len() + s.len()) as u64);
        // C2 on the real path: remote merge reads are sequential-only.
        prop_assert_eq!(p3.accesses(AccessKind::RemoteRand), 0);
        for c in [&p1, &p2, &p3] {
            assert_conserved(c)?;
            prop_assert_eq!(c.syncs(), 0, "C3: no synchronization inside phases");
        }
        // Nothing is recorded outside the three phases, and the merged
        // view loses nothing.
        prop_assert_eq!(cx.phase_counters(Phase::Four).total_accesses(), 0);
        prop_assert_eq!(
            cx.counters().total_accesses(),
            p1.total_accesses() + p2.total_accesses() + p3.total_accesses()
        );
        // A single-node machine has no remote memory at all.
        if nodes == 1 {
            prop_assert_eq!(cx.counters().remote_fraction(), 0.0);
        }
    }

    #[test]
    fn pmpsm_phase_totals_match_the_model(
        r_keys in proptest::collection::vec(0u64..100_000, 0..600),
        s_keys in proptest::collection::vec(0u64..100_000, 0..900),
        threads in 1usize..6,
        nodes in 1u32..5,
    ) {
        let r = tuples(r_keys);
        let s = tuples(s_keys);
        let topology = Topology { nodes, cores_per_node: 4, smt: 1 };
        let cx = ExecContext::new(topology, threads);
        let join = PMpsmJoin::new(JoinConfig::with_threads(threads));
        let (count, _) = join.join_in::<CountSink>(&cx, &r, &s);
        prop_assert_eq!(count, oracle_count(&r, &s));

        let t = threads as u64;
        let p1 = cx.phase_counters(Phase::One);
        let p2 = cx.phase_counters(Phase::Two);
        let p3 = cx.phase_counters(Phase::Three);
        let p4 = cx.phase_counters(Phase::Four);
        // Deterministic phases: public sort, partition pipeline,
        // private-partition sort.
        prop_assert_eq!(p1.total_accesses(), 4 * s.len() as u64);
        prop_assert_eq!(p2.total_accesses(), 5 * r.len() as u64);
        prop_assert_eq!(p3.total_accesses(), 2 * r.len() as u64);
        // The private sort runs on partitions homed on the sorting
        // worker's own node: 100% local however many nodes exist (C1).
        prop_assert_eq!(p3.remote_fraction(), 0.0);
        // Merge phase: bounded by full scans plus the entry probes.
        let max_run = s.len().div_ceil(threads).max(2) as u64;
        let probe_ceiling = t * t * (max_run.ilog2() as u64 + 1);
        prop_assert!(
            p4.total_accesses() <= t * (r.len() + s.len()) as u64 + probe_ceiling
        );
        // C1: no phase before the merge touches remote memory randomly.
        for c in [&p1, &p2, &p3] {
            prop_assert_eq!(c.accesses(AccessKind::RemoteRand), 0);
        }
        // The merge's only random remote reads are the entry probes.
        prop_assert!(p4.accesses(AccessKind::RemoteRand) <= probe_ceiling);
        for c in [&p1, &p2, &p3, &p4] {
            assert_conserved(c)?;
            prop_assert_eq!(c.syncs(), 0, "C3: no synchronization inside phases");
        }
        prop_assert_eq!(
            cx.counters().total_accesses(),
            p1.total_accesses() + p2.total_accesses() + p3.total_accesses()
                + p4.total_accesses()
        );
        if nodes == 1 {
            prop_assert_eq!(cx.counters().remote_fraction(), 0.0);
        }
    }
}

#[test]
fn paper_machine_placement_is_figure_11_round_robin() {
    // Figure 11: hardware contexts are numbered round-robin across the
    // four sockets, so a pool placed on Topology::paper_machine() puts
    // worker w on node w mod 4 and spreads every 4-worker group over
    // all sockets.
    let topology = Topology::paper_machine();
    let placement = WorkerPlacement::round_robin(topology.clone(), 64);
    for w in 0..64 {
        assert_eq!(placement.node_of(w), NodeId(w as u32 % 4), "worker {w}");
    }
    for n in 0..4u32 {
        assert_eq!(
            (0..64).filter(|&w| placement.node_of(w) == NodeId(n)).count(),
            16,
            "node {n} must host exactly its share of the contexts"
        );
    }
    // The ExecContext built for the paper machine inherits the mapping.
    let cx = ExecContext::paper_machine();
    assert_eq!(cx.threads(), 32, "one worker per physical core");
    assert_eq!(cx.worker_node(5), NodeId(1));
    assert_eq!(cx.single_node(), None);
}

#[test]
fn misplaced_allocation_policy_is_visible_in_the_audit() {
    // The anti-pattern ExecContext exists to make measurable: homing
    // every run on socket 0 turns the (random-access) private sort into
    // remote traffic for 3 of 4 workers — a C1 violation the audit
    // must expose.
    let keys: Vec<u64> = (0..4000u64).map(|i| (i * 2654435761) % 500_000).collect();
    let r = tuples(keys.clone());
    let s = tuples(keys);
    let join = PMpsmJoin::new(JoinConfig::with_threads(4));

    let placed = ExecContext::new(Topology::paper_machine(), 4);
    let (placed_count, _) = join.join_in::<CountSink>(&placed, &r, &s);

    let misplaced =
        ExecContext::new(Topology::paper_machine(), 4).alloc_policy(AllocPolicy::Pinned(NodeId(0)));
    let (misplaced_count, _) = join.join_in::<CountSink>(&misplaced, &r, &s);

    assert_eq!(placed_count, misplaced_count, "placement must never change results");
    let good_sort = placed.phase_counters(Phase::Three);
    let bad_sort = misplaced.phase_counters(Phase::Three);
    assert_eq!(good_sort.accesses(AccessKind::RemoteRand), 0, "placed sort obeys C1");
    assert!(
        bad_sort.accesses(AccessKind::RemoteRand) > 0,
        "misplaced sort must show remote random accesses"
    );
    assert!(bad_sort.remote_fraction() > 0.5, "3 of 4 workers sort remotely");
}
