//! End-to-end: the paper's benchmark query through the `mpsm-exec`
//! pipeline, across algorithms, workloads, and selections.

use mpsm::baselines::nested_loop::oracle_max_payload_sum;
use mpsm::baselines::{RadixJoin, WisconsinHashJoin};
use mpsm::core::join::b_mpsm::BMpsmJoin;
use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::JoinConfig;
use mpsm::core::Tuple;
use mpsm::exec::{paper_query, Relation};
use mpsm::workload::{fk_uniform, skewed_negative_correlation};

#[test]
fn query_without_selection_matches_oracle() {
    let w = fk_uniform(800, 4, 5);
    let r = Relation::new("R", w.r.clone());
    let s = Relation::new("S", w.s.clone());
    let expected = oracle_max_payload_sum(&w.r, &w.s);
    let algo = PMpsmJoin::new(JoinConfig::with_threads(4));
    let out = paper_query(&r, &s, |_| true, |_| true, &algo, 4);
    assert_eq!(out.max_payload_sum, expected);
    assert_eq!(out.r_selected, 800);
    assert_eq!(out.s_selected, 3200);
}

#[test]
fn query_with_selection_matches_filtered_oracle() {
    let w = fk_uniform(600, 4, 9);
    let pred_r = |t: &Tuple| t.key.is_multiple_of(3);
    let pred_s = |t: &Tuple| t.key.is_multiple_of(2);
    let r_f: Vec<Tuple> = w.r.iter().copied().filter(pred_r).collect();
    let s_f: Vec<Tuple> = w.s.iter().copied().filter(pred_s).collect();
    let expected = oracle_max_payload_sum(&r_f, &s_f);

    let r = Relation::new("R", w.r.clone());
    let s = Relation::new("S", w.s.clone());
    let algo = BMpsmJoin::new(JoinConfig::with_threads(3));
    let out = paper_query(&r, &s, pred_r, pred_s, &algo, 3);
    assert_eq!(out.max_payload_sum, expected);
    assert_eq!(out.r_selected, r_f.len());
    assert_eq!(out.s_selected, s_f.len());
}

#[test]
fn all_algorithms_agree_on_skewed_query() {
    let w = skewed_negative_correlation(500, 4, 1 << 14, 11);
    let r = Relation::new("R", w.r);
    let s = Relation::new("S", w.s);
    let cfg = JoinConfig::with_threads(4);
    let results: Vec<Option<u64>> = vec![
        paper_query(&r, &s, |_| true, |_| true, &PMpsmJoin::new(cfg.clone()), 4).max_payload_sum,
        paper_query(&r, &s, |_| true, |_| true, &BMpsmJoin::new(cfg.clone()), 4).max_payload_sum,
        paper_query(&r, &s, |_| true, |_| true, &RadixJoin::new(cfg.clone()), 4).max_payload_sum,
        paper_query(&r, &s, |_| true, |_| true, &WisconsinHashJoin::new(cfg), 4).max_payload_sum,
    ];
    assert!(results.windows(2).all(|w| w[0] == w[1]), "results diverge: {results:?}");
}

#[test]
fn stats_flow_through_the_pipeline() {
    let w = fk_uniform(2000, 2, 13);
    let r = Relation::new("R", w.r);
    let s = Relation::new("S", w.s);
    let algo = PMpsmJoin::new(JoinConfig::with_threads(2));
    let out = paper_query(&r, &s, |_| true, |_| true, &algo, 2);
    assert_eq!(out.stats.per_worker.len(), 2);
    assert!(out.stats.wall_ms() > 0.0);
}
