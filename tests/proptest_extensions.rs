//! Property tests for the extension features: bitonic networks, join
//! variants, band joins, parallel merge, sorted-run aggregation,
//! storage round-trips, and the optimized-vs-naive hot-path pairs
//! (write-combining scatter, galloping merge kernel).

use mpsm::baselines::parallel_merge::{parallel_kway_merge, sequential_kway_merge};
use mpsm::core::histogram::{combine_histograms, compute_histogram, RadixDomain};
use mpsm::core::join::b_mpsm::BMpsmJoin;
use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::variant::JoinVariant;
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::merge::{merge_join, merge_join_linear};
use mpsm::core::partition::{range_partition, range_partition_naive};
use mpsm::core::sink::{CollectSink, CountSink, JoinSink, SortedRunsSink};
use mpsm::core::sort::bitonic::bitonic_sort;
use mpsm::core::splitter::equi_height_splitters;
use mpsm::core::tuple::is_key_sorted;
use mpsm::core::worker::chunk_ranges;
use mpsm::core::Tuple;
use mpsm::exec::{sorted_group_by, CountAgg};
use mpsm::storage::{MemBackend, Record, RunStore};
use proptest::prelude::*;

fn tuples(keys: Vec<u64>) -> Vec<Tuple> {
    keys.into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitonic_sorts_any_input(keys in proptest::collection::vec(any::<u64>(), 0..600)) {
        let mut data = tuples(keys);
        let mut expected: Vec<u64> = data.iter().map(|t| t.key).collect();
        expected.sort_unstable();
        bitonic_sort(&mut data);
        prop_assert!(is_key_sorted(&data));
        prop_assert_eq!(data.iter().map(|t| t.key).collect::<Vec<_>>(), expected);
    }

    #[test]
    fn outer_join_cardinality_identity(
        r_keys in proptest::collection::vec(0u64..96, 0..200),
        s_keys in proptest::collection::vec(0u64..96, 0..200),
        threads in 1usize..5,
    ) {
        // |R LEFT OUTER S| == |R INNER S| + |R ANTI S| and
        // |R SEMI S| + |R ANTI S| == |R|, on both topologies.
        let r = tuples(r_keys);
        let s = tuples(s_keys);
        let cfg = JoinConfig::with_threads(threads);
        for run in [0u8, 1] {
            let count = |v: JoinVariant| -> u64 {
                if run == 0 {
                    PMpsmJoin::new(cfg.clone()).join_variant_with_sink::<CountSink>(v, &r, &s).0
                } else {
                    BMpsmJoin::new(cfg.clone()).join_variant_with_sink::<CountSink>(v, &r, &s).0
                }
            };
            let inner = count(JoinVariant::Inner);
            let outer = count(JoinVariant::LeftOuter);
            let semi = count(JoinVariant::LeftSemi);
            let anti = count(JoinVariant::LeftAnti);
            prop_assert_eq!(outer, inner + anti);
            prop_assert_eq!(semi + anti, r.len() as u64);
        }
    }

    #[test]
    fn band_join_widening_is_monotone(
        r_keys in proptest::collection::vec(0u64..2000, 1..100),
        s_keys in proptest::collection::vec(0u64..2000, 1..100),
        delta in 0u64..64,
    ) {
        let r = tuples(r_keys);
        let s = tuples(s_keys);
        let join = BMpsmJoin::new(JoinConfig::with_threads(2));
        let narrow = join.band_join_with_sink::<CountSink>(delta, &r, &s).0;
        let wide = join.band_join_with_sink::<CountSink>(delta + 8, &r, &s).0;
        prop_assert!(wide >= narrow, "widening the band cannot lose pairs");
        // Reference check at the narrow delta.
        let expected: u64 = r
            .iter()
            .map(|rt| s.iter().filter(|st| st.key.abs_diff(rt.key) <= delta).count() as u64)
            .sum();
        prop_assert_eq!(narrow, expected);
    }

    #[test]
    fn parallel_merge_equals_sequential_merge(
        runs_keys in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..150), 1..6),
        threads in 1usize..6,
    ) {
        let runs: Vec<Vec<Tuple>> = runs_keys
            .into_iter()
            .map(|mut ks| {
                ks.sort_unstable();
                tuples(ks)
            })
            .collect();
        let seq = sequential_kway_merge(runs.clone());
        let par = parallel_kway_merge(runs, threads);
        prop_assert!(is_key_sorted(&par));
        prop_assert_eq!(
            par.iter().map(|t| t.key).collect::<Vec<_>>(),
            seq.iter().map(|t| t.key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sorted_runs_group_counts_equal_join_count(
        r_keys in proptest::collection::vec(0u64..64, 0..150),
        s_keys in proptest::collection::vec(0u64..64, 0..150),
        threads in 1usize..5,
    ) {
        let r = tuples(r_keys);
        let s = tuples(s_keys);
        let join = PMpsmJoin::new(JoinConfig::with_threads(threads));
        let (runs, _) = join.join_with_sink::<SortedRunsSink>(&r, &s);
        for run in &runs {
            prop_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0));
        }
        let groups = sorted_group_by::<CountAgg>(&runs);
        let total: u64 = groups.iter().map(|&(_, c)| c).sum();
        let (count, _) = join.join_with_sink::<CountSink>(&r, &s);
        prop_assert_eq!(total, count, "group counts must add up to the join cardinality");
    }

    #[test]
    fn run_store_roundtrips_any_sorted_run(
        mut keys in proptest::collection::vec(any::<u64>(), 0..400),
        page in 1u32..64,
    ) {
        keys.sort_unstable();
        let run = tuples(keys);
        let store = RunStore::new(MemBackend::disk_array(), page);
        let meta = store.store_run(&run).unwrap();
        prop_assert_eq!(meta.len as usize, run.len());
        let mut reader = store.reader::<Tuple>(meta.id).unwrap();
        let mut out = Vec::new();
        while let Some(t) = reader.next().unwrap() {
            out.push(t);
        }
        prop_assert_eq!(out, run);
        // Page min/max keys bracket their pages.
        for p in 0..meta.pages() {
            prop_assert!(meta.min_keys[p as usize] <= meta.max_keys[p as usize]);
        }
    }

    #[test]
    fn tuple_record_roundtrip(key in any::<u64>(), payload in any::<u64>()) {
        let t = Tuple::new(key, payload);
        let mut buf = [0u8; 16];
        t.write_to(&mut buf);
        prop_assert_eq!(Tuple::read_from(&buf), t);
    }

    #[test]
    fn scatter_write_combining_matches_naive(
        keys in proptest::collection::vec(any::<u64>(), 0..1200),
        workers in 1usize..6,
        fan in 1usize..9,
        bits in 1u32..8,
        skew in 0u8..3,
    ) {
        // Skewed key domains: full 64-bit, a narrow band (dense
        // duplicates), or 90% of the mass in 1% of the domain.
        let keys: Vec<u64> = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| match skew {
                0 => k,
                1 => k % 97,
                _ if i % 10 < 9 => k % 41,
                _ => k,
            })
            .collect();
        let data = tuples(keys);
        let ranges = chunk_ranges(data.len(), workers);
        let chunks: Vec<&[Tuple]> = ranges.iter().map(|r| &data[r.clone()]).collect();
        let domain = RadixDomain::from_tuples(chunks.iter().copied(), bits);
        let hist = combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let splitters = equi_height_splitters(&hist, fan);
        let optimized = range_partition(&chunks, &domain, &splitters);
        let naive = range_partition_naive(&chunks, &domain, &splitters);
        // Tuple-for-tuple identical: same partitions, worker
        // sub-partitions in worker order, chunk order within each —
        // the Figure 6 layout guarantee.
        prop_assert_eq!(optimized, naive);
    }

    #[test]
    fn galloping_merge_agrees_with_linear_and_oracle(
        r_keys in proptest::collection::vec(any::<u64>(), 0..400),
        s_keys in proptest::collection::vec(any::<u64>(), 0..400),
        shape in 0u8..4,
    ) {
        // Shapes: duplicate-heavy, disjoint ranges, one-sided skew
        // (sparse r vs. dense s), and raw 64-bit keys.
        let reshape = |ks: Vec<u64>, side: u64| -> Vec<u64> {
            ks.into_iter()
                .map(|k| match shape {
                    0 => k % 23,
                    1 => (k % 1000) + side * 1_000_000,
                    2 if side == 0 => (k % 8) * 100_000,
                    2 => k % 500_000,
                    _ => k,
                })
                .collect()
        };
        let mut r = tuples(reshape(r_keys, 0));
        let mut s = tuples(reshape(s_keys, 1));
        r.sort_unstable();
        s.sort_unstable();
        let mut gallop = CollectSink::default();
        merge_join(&r, &s, &mut gallop);
        let mut linear = CollectSink::default();
        merge_join_linear(&r, &s, &mut linear);
        prop_assert_eq!(gallop.finish(), linear.finish());
        let expected: u64 = r
            .iter()
            .map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64)
            .sum();
        prop_assert_eq!(mpsm::core::merge::merge_join_count(&r, &s), expected);
    }
}
