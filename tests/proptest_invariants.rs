//! Property-based invariants over the core data structures and the
//! join algorithms (proptest).

use mpsm::baselines::nested_loop::oracle_count;
use mpsm::core::cdf::{equi_height_bounds, Cdf};
use mpsm::core::histogram::{combine_histograms, compute_histogram, RadixDomain};
use mpsm::core::interpolation::{interpolation_lower_bound, interpolation_upper_bound};
use mpsm::core::join::b_mpsm::BMpsmJoin;
use mpsm::core::join::p_mpsm::PMpsmJoin;
use mpsm::core::join::{JoinAlgorithm, JoinConfig};
use mpsm::core::merge::{merge_join, merge_join_count, merge_join_linear};
use mpsm::core::partition::range_partition;
use mpsm::core::sink::{CollectSink, JoinSink};
use mpsm::core::sort::three_phase_sort;
use mpsm::core::splitter::{compute_splitters, equi_height_splitters};
use mpsm::core::tuple::is_key_sorted;
use mpsm::core::worker::chunk_ranges;
use mpsm::core::Tuple;
use proptest::prelude::*;

fn tuples(keys: Vec<u64>) -> Vec<Tuple> {
    keys.into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect()
}

fn key_multiset(ts: &[Tuple]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = ts.iter().map(|t| (t.key, t.payload)).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sort_produces_sorted_permutation(keys in proptest::collection::vec(any::<u64>(), 0..2000)) {
        let mut data = tuples(keys);
        let before = key_multiset(&data);
        three_phase_sort(&mut data);
        prop_assert!(is_key_sorted(&data));
        prop_assert_eq!(key_multiset(&data), before);
    }

    #[test]
    fn sort_on_narrow_domains(keys in proptest::collection::vec(0u64..16, 0..1500)) {
        let mut data = tuples(keys);
        let before = key_multiset(&data);
        three_phase_sort(&mut data);
        prop_assert!(is_key_sorted(&data));
        prop_assert_eq!(key_multiset(&data), before);
    }

    #[test]
    fn interpolation_equals_partition_point(
        mut keys in proptest::collection::vec(any::<u64>(), 0..800),
        probe in any::<u64>(),
    ) {
        keys.sort_unstable();
        let run = tuples(keys);
        // tuples() keeps key order; payload differs but keys stay sorted.
        prop_assert_eq!(
            interpolation_lower_bound(&run, probe),
            run.partition_point(|t| t.key < probe)
        );
        prop_assert_eq!(
            interpolation_upper_bound(&run, probe),
            run.partition_point(|t| t.key <= probe)
        );
    }

    #[test]
    fn merge_join_count_matches_oracle(
        r_keys in proptest::collection::vec(0u64..64, 0..300),
        s_keys in proptest::collection::vec(0u64..64, 0..300),
    ) {
        let mut r = tuples(r_keys);
        let mut s = tuples(s_keys);
        let expected = oracle_count(&r, &s);
        r.sort_unstable_by_key(|t| t.key);
        s.sort_unstable_by_key(|t| t.key);
        prop_assert_eq!(merge_join_count(&r, &s), expected);
    }

    #[test]
    fn gallop_merge_emits_exactly_the_linear_merge_rows(
        seg_words in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        // The adaptive galloping kernel must emit the exact row set of
        // the plain linear merge across regime shifts — densely
        // interleaved stretches (where galloping historically lost),
        // one-sided sparse stretches (where it wins), and duplicate
        // blocks (group cross products). Each word encodes one segment.
        let mut r_keys = Vec::new();
        let mut s_keys = Vec::new();
        let mut base = 0u64;
        for w in seg_words {
            let len = 1 + (w >> 2) % 400;
            match w % 4 {
                // Perfectly interleaved, disjoint: r gets evens, s odds.
                0 => {
                    for i in 0..len {
                        r_keys.push(base + 2 * i);
                        s_keys.push(base + 2 * i + 1);
                    }
                    base += 2 * len;
                }
                // s dense, r sparse: one r probe into the middle.
                1 => {
                    s_keys.extend((0..len).map(|i| base + i));
                    r_keys.push(base + len / 2);
                    base += len + 1;
                }
                // r dense, s sparse.
                2 => {
                    r_keys.extend((0..len).map(|i| base + i));
                    s_keys.push(base + len / 2);
                    base += len + 1;
                }
                // Matching keys duplicated ×3 on both sides.
                _ => {
                    for i in 0..len {
                        r_keys.push(base + i / 3);
                        s_keys.push(base + i / 3);
                    }
                    base += len / 3 + 1;
                }
            }
        }
        let r = tuples(r_keys);
        let s = tuples(s_keys);
        let mut gallop = CollectSink::default();
        merge_join(&r, &s, &mut gallop);
        let mut linear = CollectSink::default();
        merge_join_linear(&r, &s, &mut linear);
        prop_assert_eq!(gallop.finish(), linear.finish());
    }

    #[test]
    fn partition_is_range_respecting_permutation(
        keys in proptest::collection::vec(any::<u64>(), 1..1000),
        workers in 1usize..5,
        parts in 1usize..5,
        bits in 3u32..8,
    ) {
        let data = tuples(keys);
        let domain = RadixDomain::from_tuples([data.as_slice()], bits);
        let ranges = chunk_ranges(data.len(), workers);
        let chunks: Vec<&[Tuple]> = ranges.iter().map(|r| &data[r.clone()]).collect();
        let hist = combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let splitters = equi_height_splitters(&hist, parts);
        let runs = range_partition(&chunks, &domain, &splitters);

        // Permutation.
        let mut out: Vec<(u64, u64)> =
            runs.iter().flat_map(|r| r.iter().map(|t| (t.key, t.payload))).collect();
        out.sort_unstable();
        prop_assert_eq!(out, key_multiset(&data));
        // Range-respecting.
        for (p, run) in runs.iter().enumerate() {
            for t in run {
                prop_assert_eq!(splitters.partition_of_bucket(domain.bucket_of(t.key)), p);
            }
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded(
        mut keys in proptest::collection::vec(any::<u64>(), 1..500),
        fan in 1usize..32,
    ) {
        keys.sort_unstable();
        let run = tuples(keys);
        let bounds = equi_height_bounds(&run, fan);
        let cdf = Cdf::from_local_bounds(&[(bounds, run.len())]);
        let total = cdf.total();
        prop_assert!((total - run.len() as f64).abs() < 1e-6);
        let mut prev = -1.0;
        for probe in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            let e = cdf.estimate(probe);
            prop_assert!(e >= prev - 1e-9);
            prop_assert!((-1e-9..=total + 1e-9).contains(&e));
            prev = e;
        }
    }

    #[test]
    fn splitters_cover_all_buckets_monotonically(
        hist in proptest::collection::vec(0usize..50, 8..64),
        parts in 1usize..6,
    ) {
        let domain = RadixDomain::from_range(0, (hist.len() as u64 * 7).max(1), 6);
        // Domain bucket count may differ from hist len; rebuild hist to width.
        let mut h = hist.clone();
        h.resize(domain.buckets(), 0);
        let run: Vec<Tuple> = (0..100u64).map(|k| Tuple::new(k, 0)).collect();
        let cdf = Cdf::exact(&[&run]);
        let sp = compute_splitters(&h, &domain, &cdf, parts);
        prop_assert!(sp.assignment().windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(sp.assignment().iter().all(|&p| (p as usize) < parts));
        prop_assert_eq!(sp.assignment().len(), domain.buckets());
    }

    #[test]
    fn p_mpsm_matches_b_mpsm(
        r_keys in proptest::collection::vec(0u64..128, 0..400),
        s_keys in proptest::collection::vec(0u64..128, 0..400),
        threads in 1usize..6,
    ) {
        let r = tuples(r_keys);
        let s = tuples(s_keys);
        let cfg = JoinConfig::with_threads(threads);
        let p = PMpsmJoin::new(cfg.clone()).count(&r, &s);
        let b = BMpsmJoin::new(cfg).count(&r, &s);
        prop_assert_eq!(p, b);
        prop_assert_eq!(p, oracle_count(&r, &s));
    }
}
