//! Role reversal, location-skew invariance, splitter balancing, and
//! phase statistics across crates.

use mpsm::baselines::nested_loop::oracle_count;
use mpsm::core::join::p_mpsm::{PMpsmJoin, SplitterPolicy};
use mpsm::core::join::{JoinAlgorithm, JoinConfig, Role};
use mpsm::core::stats::Phase;
use mpsm::workload::{
    apply_location_skew, extreme_location_skew, fk_uniform, skewed_negative_correlation,
};

#[test]
fn role_reversal_is_result_invariant() {
    let w = fk_uniform(600, 8, 3);
    let join = PMpsmJoin::new(JoinConfig::with_threads(4));
    assert_eq!(join.count(&w.r, &w.s), join.count(&w.s, &w.r));
    assert_eq!(join.max_payload_sum(&w.r, &w.s), join.max_payload_sum(&w.s, &w.r));
}

#[test]
fn auto_role_picks_the_smaller_private_input() {
    let w = fk_uniform(500, 4, 5);
    let auto = PMpsmJoin::new(JoinConfig::with_threads(4).role(Role::SmallerPrivate));
    // Whichever order the caller uses, the result is the same.
    assert_eq!(auto.count(&w.s, &w.r), auto.count(&w.r, &w.s));
    assert_eq!(auto.count(&w.r, &w.s), oracle_count(&w.r, &w.s));
}

#[test]
fn location_skew_variants_join_identically() {
    let base = fk_uniform(800, 4, 7);
    let expected = oracle_count(&base.r, &base.s);
    let join = PMpsmJoin::new(JoinConfig::with_threads(4));
    for rotate in 0..3 {
        let mut s = base.s.clone();
        extreme_location_skew(&mut s, 4, rotate, 11);
        assert_eq!(join.count(&base.r, &s), expected, "rotate {rotate}");
    }
    let mut mild = base.s.clone();
    apply_location_skew(&mut mild, 8, 13);
    assert_eq!(join.count(&base.r, &mild), expected);
}

#[test]
fn cost_balanced_splitters_balance_under_negative_correlation() {
    // The Figure 16 claim as a test: under negatively correlated skew,
    // cost-balanced splitters yield better worker balance than
    // equi-height splitters.
    let w = skewed_negative_correlation(1 << 15, 4, 1 << 32, 17);
    let cfg = JoinConfig::with_threads(8).radix_bits(10);
    let balanced = PMpsmJoin::new(cfg.clone());
    let naive = PMpsmJoin::new(cfg).with_splitter_policy(SplitterPolicy::EquiHeight);
    let (c1, stats_balanced) = balanced.join_with_sink::<mpsm::core::sink::CountSink>(&w.r, &w.s);
    let (c2, stats_naive) = naive.join_with_sink::<mpsm::core::sink::CountSink>(&w.r, &w.s);
    assert_eq!(c1, c2, "policies must agree on the result");
    // Compare the *join-phase* balance (the green bars of Figure 16):
    // per-worker phase-4 times.
    let spread = |st: &mpsm::core::stats::JoinStats| {
        let p4: Vec<f64> =
            st.per_worker.iter().map(|p| p[Phase::Four as usize].as_secs_f64()).collect();
        let max = p4.iter().cloned().fold(0.0, f64::max);
        let avg = p4.iter().sum::<f64>() / p4.len() as f64;
        if avg > 0.0 {
            max / avg
        } else {
            1.0
        }
    };
    let b = spread(&stats_balanced);
    let n = spread(&stats_naive);
    assert!(
        b <= n * 1.25,
        "cost-balanced join phase should not be meaningfully less balanced: {b:.2} vs {n:.2}"
    );
}

#[test]
fn stats_phases_cover_the_wall_time() {
    let w = fk_uniform(20_000, 4, 19);
    let join = PMpsmJoin::new(JoinConfig::with_threads(4));
    let (_, stats) = join.join_with_sink::<mpsm::core::sink::CountSink>(&w.r, &w.s);
    let phase_sum: f64 = stats.phases_ms().iter().sum();
    assert!(phase_sum > 0.0);
    assert!(
        stats.wall_ms() >= phase_sum * 0.5,
        "wall {} ms vs phase critical paths {} ms",
        stats.wall_ms(),
        phase_sum
    );
    // Every worker participated in phases 1 and 4.
    for (w_idx, phases) in stats.per_worker.iter().enumerate() {
        assert!(phases[Phase::One as usize].as_nanos() > 0, "worker {w_idx} idle in phase 1");
    }
}
