//! Concurrency and invalidation suite for the sorted-run cache:
//! clients racing on one key must agree with uncached execution while
//! the cache populates each side exactly once (single-flight), and
//! re-registering a relation mid-stream must never serve stale runs —
//! every handle joins exactly the version it captured.

use std::sync::Arc;

use mpsm::core::Tuple;
use mpsm::exec::{CompactionConfig, QuerySpec, Relation, RunCacheConfig, SchedulerConfig, Session};
use proptest::prelude::*;

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 32
    }
}

/// R with payloads stamped by `version`, so a result proves which
/// version of the relation the join actually read.
fn versioned_r(n: u64, version: u64) -> Relation {
    Relation::new("R", (0..n).map(|k| Tuple::new(k, version * 1_000_000 + k)).collect())
}

fn plain_s(n: u64) -> Relation {
    Relation::new("S", (0..n).map(|k| Tuple::new(k, k)).collect())
}

/// `max(R.payload + S.payload)` for `versioned_r(n, version) ⋈ plain_s(n)`.
fn expected_max(n: u64, version: u64) -> Option<u64> {
    Some(version * 1_000_000 + (n - 1) + (n - 1))
}

#[test]
fn racing_clients_on_one_key_agree_with_uncached_execution() {
    let mut next = lcg(2012);
    let r_data: Vec<Tuple> = (0..3000).map(|i| Tuple::new(next() % 700, i)).collect();
    let s_data: Vec<Tuple> = (0..9000).map(|i| Tuple::new(next() % 700, i)).collect();

    let uncached = Session::uncached(SchedulerConfig::new(2));
    let ur = uncached.register(Relation::new("R", r_data.clone()));
    let us = uncached.register(Relation::new("S", s_data.clone()));
    let expect = uncached.query(QuerySpec::join(&ur, &us)).expect("uncached query").result;

    let cached = Session::new(SchedulerConfig::new(2).max_in_flight(4).queue_capacity(64));
    let r = cached.register(Relation::new("R", r_data));
    let s = cached.register(Relation::new("S", s_data));

    // 8 client threads × 4 queries, all on the same cache key. The
    // first misses race: one query per side wins the build permit, the
    // losers run uncached (never blocking, never double-publishing).
    std::thread::scope(|scope| {
        for client in 0..8 {
            let (cached, r, s) = (&cached, &r, &s);
            let expect = &expect;
            scope.spawn(move || {
                for round in 0..4 {
                    let out = cached
                        .query(QuerySpec::join(r, s))
                        .unwrap_or_else(|e| panic!("client {client} round {round}: {e}"));
                    assert_eq!(
                        out.result.max_payload_sum, expect.max_payload_sum,
                        "client {client} round {round}"
                    );
                }
            });
        }
    });

    let stats = cached.run_cache().expect("cached session").stats();
    assert_eq!(stats.inserts, 2, "single-flight: each side is built into the cache exactly once");
    assert_eq!(stats.entries, 2, "both run sets resident");
    assert_eq!(stats.hits + stats.misses, 64, "32 queries × 2 sides all consulted the cache");
    assert!(stats.hits >= 2, "later rounds must hit; got {stats:?}");
    assert_eq!(stats.evictions, 0, "nothing invalidated or over budget");
}

#[test]
fn old_handles_recompute_after_invalidation() {
    let n = 512;
    let session = Session::new(SchedulerConfig::new(2));
    let s = session.register(plain_s(n));
    let v1 = session.register(versioned_r(n, 1));
    // Populate the cache for version 1, then bump the relation.
    assert_eq!(
        session.query(QuerySpec::join(&v1, &s)).expect("v1 query").result.max_payload_sum,
        expected_max(n, 1)
    );
    let v2 = session.register(versioned_r(n, 2));
    // The bump invalidated version 1's cached runs; both handles still
    // answer for exactly the data they captured.
    assert_eq!(
        session.query(QuerySpec::join(&v2, &s)).expect("v2 query").result.max_payload_sum,
        expected_max(n, 2)
    );
    assert_eq!(
        session.query(QuerySpec::join(&v1, &s)).expect("stale-handle query").result.max_payload_sum,
        expected_max(n, 1)
    );
    let stats = session.run_cache().expect("cached").stats();
    assert!(stats.evictions >= 1, "the re-registration evicted v1's runs: {stats:?}");
}

/// Compaction folds the delta, bumps the version, and — with cache
/// warming on — publishes **exactly one** cache entry per new version
/// (single-flighted), which the very next query hits on both sides.
#[test]
fn compaction_warms_exactly_one_cache_entry_per_version() {
    let n = 256;
    let session = Session::with_compaction(
        SchedulerConfig::new(2),
        RunCacheConfig::default(),
        CompactionConfig::manual(),
    );
    let s = session.register(plain_s(n));
    let r = session.register(versioned_r(n, 1));
    assert_eq!(
        session.query(QuerySpec::join(&r, &s)).expect("populate").result.max_payload_sum,
        expected_max(n, 1)
    );
    let base_inserts = session.run_cache().expect("cached").stats().inserts;
    assert_eq!(base_inserts, 2, "first query built both sides into the cache");

    for round in 1..=4u64 {
        // One dominating append on key 0 (plain S has payload 0 there),
        // so every round's answer proves which writes the join saw.
        session.append("R", [Tuple::new(0, 9_000_000 + round)]).expect("registered");
        assert!(session.compact("R"), "round {round}: delta folds");
        let stats = session.run_cache().expect("cached").stats();
        assert_eq!(
            stats.inserts,
            base_inserts + round,
            "round {round}: compaction publishes exactly one entry for the new version"
        );
        let before = stats;
        let out = session.query(QuerySpec::join(&r, &s)).expect("post-compaction").result;
        assert_eq!(out.max_payload_sum, Some(9_000_000 + round), "round {round}");
        let after = session.run_cache().expect("cached").stats();
        assert_eq!(after.hits, before.hits + 2, "round {round}: warmed runs hit on both sides");
        assert_eq!(after.inserts, before.inserts, "round {round}: the query built nothing");
        assert_eq!(
            session.relation("R").expect("resolves").version(),
            1 + round,
            "round {round}: each fold bumps the version"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Write storm vs. the cache: random appends, deletes, compactions,
    /// re-registrations and queries, with every answer checked against
    /// a replayed model of the handle's own lineage. A stale hit —
    /// cached runs served for contents they no longer describe — shows
    /// up as a wrong `max` immediately.
    #[test]
    fn write_storms_never_serve_stale_hits(
        ops in proptest::collection::vec(any::<u64>(), 4..40),
    ) {
        let n = 192u64;
        let session = Session::with_compaction(
            SchedulerConfig::new(2),
            RunCacheConfig::default(),
            CompactionConfig::manual(),
        );
        let s = session.register(plain_s(n));
        let s_data: Vec<Tuple> = (0..n).map(|k| Tuple::new(k, k)).collect();
        let oracle = |model: &[Tuple]| -> Option<u64> {
            let mut max = None;
            for rt in model {
                for st in &s_data {
                    if rt.key == st.key {
                        let sum = rt.payload + st.payload;
                        if max.is_none_or(|m| sum > m) {
                            max = Some(sum);
                        }
                    }
                }
            }
            max
        };

        // Per-lineage replayed contents: a re-registration freezes the
        // old lineage's model (its handles pin that final world) and
        // starts a new one; writes and compactions evolve the last.
        let first: Vec<Tuple> = (0..n).map(|k| Tuple::new(k, 1_000_000 + k)).collect();
        let mut lineages: Vec<Vec<Tuple>> = vec![first];
        let mut handles: Vec<(Arc<Relation>, usize)> =
            vec![(session.register(versioned_r(n, 1)), 0)];
        let mut version = 1u64;
        let mut stamp = 0u64;
        for (step, w) in ops.iter().enumerate() {
            match w % 6 {
                0 | 1 => {
                    stamp += 1;
                    let t = Tuple::new(w % n, 2_000_000 + stamp);
                    session.append("R", [t]).expect("registered");
                    lineages.last_mut().expect("nonempty").push(t);
                }
                2 => {
                    let key = (w / 6) % n;
                    session.delete("R", key).expect("registered");
                    lineages.last_mut().expect("nonempty").retain(|t| t.key != key);
                }
                3 => {
                    session.compact("R");
                }
                4 => {
                    version += 1;
                    lineages.push(
                        (0..n).map(|k| Tuple::new(k, version * 1_000_000 + k)).collect(),
                    );
                    handles.push((session.register(versioned_r(n, version)), lineages.len() - 1));
                }
                _ => {
                    let (handle, lineage) = &handles[(*w as usize / 6) % handles.len()];
                    let out = session
                        .query(QuerySpec::join(handle, &s))
                        .expect("query failed")
                        .result;
                    prop_assert_eq!(
                        out.max_payload_sum,
                        oracle(&lineages[*lineage]),
                        "step {}: stale or torn answer for lineage {}",
                        step,
                        lineage
                    );
                }
            }
        }
        // Quiesce and sweep every handle once more.
        session.compact("R");
        for (handle, lineage) in &handles {
            let out = session.query(QuerySpec::join(handle, &s)).expect("final sweep").result;
            prop_assert_eq!(out.max_payload_sum, oracle(&lineages[*lineage]));
        }
    }

    #[test]
    fn random_register_query_interleavings_never_serve_stale_runs(
        ops in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        // A random interleaving of re-registrations and queries —
        // queries target a random previously captured handle, so both
        // the newest version and arbitrarily stale handles are joined
        // while the cache churns underneath. Every answer must carry
        // the payload stamp of the handle's own version.
        let n = 256;
        let session = Session::new(SchedulerConfig::new(2));
        let s = session.register(plain_s(n));
        let mut version = 1u64;
        let mut handles: Vec<(Arc<Relation>, u64)> =
            vec![(session.register(versioned_r(n, version)), version)];
        for w in ops {
            if w % 3 == 0 {
                version += 1;
                handles.push((session.register(versioned_r(n, version)), version));
            } else {
                let (handle, v) = &handles[(w as usize / 3) % handles.len()];
                let out = session
                    .query(QuerySpec::join(handle, &s))
                    .expect("query failed")
                    .result;
                prop_assert_eq!(out.max_payload_sum, expected_max(n, *v));
            }
        }
    }
}
