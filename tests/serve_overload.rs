//! Overload and connection-hygiene behaviour of the multiplexed
//! front-end: a saturating client storm draws **zero rejections** and
//! every degraded answer is a verified key-order prefix with positive
//! coverage; a client dropped mid-frame never wedges a connection
//! worker; and the two reapers — idle timeout and mid-frame read
//! deadline — close stalled connections without touching healthy ones.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use mpsm::exec::{RunCacheConfig, SchedulerConfig, Session};
use mpsm_serve::protocol::{read_frame, write_frame, Frame};
use mpsm_serve::{Client, QueryRequest, Server, ServerConfig, ServerHandle};

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 32
    }
}

/// `(key, payload)` pairs: every key in `0..n` once, payload = key, so
/// the sorted join is exactly `(k, k, k)` for `k` in `0..n` and any
/// prefix can be verified in closed form.
fn closed_form_tuples(n: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut keys: Vec<u64> = (0..n).collect();
    let mut next = lcg(seed);
    for i in (1..keys.len()).rev() {
        keys.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    keys.into_iter().map(|k| (k, k)).collect()
}

fn serve_with(scheduler: SchedulerConfig, server: ServerConfig) -> ServerHandle {
    let session = Session::with_run_cache(scheduler, RunCacheConfig::default());
    Server::bind_with("127.0.0.1:0", session, server).expect("bind").spawn().expect("spawn")
}

/// Read once from a raw stream and decide whether the server hung up.
/// A read timeout means it did NOT — the connection is still open.
fn assert_reaped(stream: &mut TcpStream, why: &str) {
    let mut probe = [0u8; 16];
    match stream.read(&mut probe) {
        Ok(0) => {}
        Ok(n) => panic!("{why}: expected a close, got {n} unsolicited bytes"),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            panic!("{why}: connection still open after the timeout window")
        }
        Err(_) => {} // a reset counts as reaped too
    }
}

/// Saturate a tiny admission budget from many concurrent clients.
/// Degrade-don't-reject means every query answers: no `REJECTED`
/// errors, no shed, and each degraded (incomplete) answer carries
/// coverage > 0 with rows that are an exact key-order prefix of the
/// full join.
#[test]
fn client_storm_degrades_with_zero_rejections() {
    let n = 1u64 << 16; // 16 blocks of merge work: a 4-block degraded budget is a strict partial
    let server = serve_with(
        SchedulerConfig::new(2).max_in_flight(2).queue_capacity(2),
        ServerConfig::default().workers(2),
    );
    let mut setup = Client::connect(server.addr()).expect("connect");
    setup.register("R", closed_form_tuples(n, 7)).expect("register R");
    setup.register("S", closed_form_tuples(n, 11)).expect("register S");

    let addr = server.addr();
    let incomplete = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..12u8 {
            let incomplete = &incomplete;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut request = QueryRequest::new("R", "S");
                request.priority = t % 3;
                request.rows_cap = n as u32;
                for _ in 0..6 {
                    // `expect` fails the test on any Error frame — a
                    // REJECTED or SHED answer can't slip through.
                    let reply = client.query(&request).expect("storm queries are never rejected");
                    assert!(reply.coverage > 0.0, "every answer carries some coverage");
                    let rows = reply.rows;
                    assert_eq!(
                        rows,
                        (0..rows.len() as u64).map(|k| (k, k, k)).collect::<Vec<_>>(),
                        "every answer is an exact key-order prefix of the full join"
                    );
                    if !reply.complete {
                        incomplete.fetch_add(1, Ordering::Relaxed);
                        assert!(reply.coverage < 1.0);
                        assert!((rows.len() as u64) < n, "incomplete answers are strict prefixes");
                        assert!(
                            !reply.range_coverage.is_empty(),
                            "degraded answers carry the per-range histogram"
                        );
                    } else {
                        assert_eq!(rows.len() as u64, n, "complete answers deliver every row");
                    }
                }
            });
        }
    });

    let metrics = setup.metrics().expect("metrics");
    assert_eq!(metrics.rejected, 0, "degrade-don't-reject: nothing is rejected under storm");
    assert_eq!(metrics.shed, 0, "nothing is shed either");
    assert!(metrics.degraded > 0, "the storm must have overflowed the 4-slot budget");
    assert_eq!(metrics.completed, metrics.submitted, "every admitted query answered");
    assert!(
        incomplete.load(Ordering::Relaxed) > 0,
        "at least one degraded query must have returned a partial answer"
    );

    server.shutdown();
}

/// A client that vanishes mid-frame (length prefix promised, body
/// truncated) or mid-reply must not wedge its connection worker: with
/// a single worker, a healthy connection sharing that worker keeps
/// getting answers.
#[test]
fn mid_frame_disconnect_never_wedges_a_connection_worker() {
    let server = serve_with(SchedulerConfig::new(2), ServerConfig::default().workers(1));
    let mut client = Client::connect(server.addr()).expect("connect");
    client.register("R", closed_form_tuples(256, 3)).expect("register R");
    client.register("S", closed_form_tuples(256, 5)).expect("register S");

    let mut request = QueryRequest::new("R", "S");
    request.rows_cap = 4;
    for round in 0..8 {
        // Promise a 64-byte frame, deliver 4 bytes, vanish.
        let mut half = TcpStream::connect(server.addr()).expect("connect");
        half.write_all(&64u32.to_le_bytes()).expect("len");
        half.write_all(&[0x05, 1, 2, round]).expect("partial body");
        drop(half);

        // Variant: a complete Query frame, but the client disconnects
        // before reading the reply — the worker writes into a dead
        // socket and must shrug it off.
        let mut ghost = TcpStream::connect(server.addr()).expect("connect");
        write_frame(
            &mut ghost,
            &Frame::Query(mpsm_serve::protocol::QueryBody {
                r: "R".to_string(),
                s: "S".to_string(),
                deadline_micros: 0,
                priority: 1,
                rows_cap: 4,
            }),
        )
        .expect("write");
        drop(ghost);

        // The lone worker still serves the healthy connection.
        let reply = client.query(&request).expect("query after mid-frame disconnects");
        assert_eq!(reply.rows, vec![(0, 0, 0), (1, 1, 1), (2, 2, 2), (3, 3, 3)]);
    }

    server.shutdown();
}

/// A connection stuck mid-frame is reaped at the read deadline, and
/// trickling one byte at a time does not reset the clock.
#[test]
fn mid_frame_stall_is_reaped_at_the_read_deadline() {
    let server = serve_with(
        SchedulerConfig::new(2),
        ServerConfig::default().workers(1).read_deadline(Duration::from_millis(100)),
    );
    let mut stuck = TcpStream::connect(server.addr()).expect("connect");
    stuck.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stuck.write_all(&64u32.to_le_bytes()).expect("len");
    stuck.write_all(&[0x01]).expect("first byte");
    // Trickle another byte inside the window: the deadline clocks from
    // the frame's first byte, so this must not buy more time.
    std::thread::sleep(Duration::from_millis(50));
    let _ = stuck.write_all(&[0x02]);
    assert_reaped(&mut stuck, "mid-frame stall");

    // The worker that reaped it still serves new connections.
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("ping after reap");

    server.shutdown();
}

/// A connection with no traffic and nothing owed is reaped at the idle
/// timeout, while an active sibling on the same worker keeps running.
#[test]
fn idle_connection_is_reaped_while_an_active_one_survives() {
    let server = serve_with(
        SchedulerConfig::new(2),
        ServerConfig::default().workers(1).idle_timeout(Duration::from_millis(150)),
    );
    let mut idle = TcpStream::connect(server.addr()).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    // One clean exchange, then silence.
    write_frame(&mut idle, &Frame::Ping).expect("write");
    let frame = read_frame(&mut idle).expect("read").expect("open").expect("decodes");
    assert_eq!(frame, Frame::Pong);

    // An active sibling pings through the idle window and survives.
    let mut active = Client::connect(server.addr()).expect("connect");
    let window = Instant::now() + Duration::from_millis(600);
    while Instant::now() < window {
        active.ping().expect("active connection must survive the reaper");
        std::thread::sleep(Duration::from_millis(50));
    }

    assert_reaped(&mut idle, "idle connection");
    server.shutdown();
}
