//! The query-service layer, end to end: every frame type round-trips
//! over a real TCP socket, malformed frames draw errors without
//! killing the connection, SLA admission surfaces as typed error
//! codes, and the anytime contract — coverage monotone in the budget,
//! partial rows a key-order prefix of the full join — holds both
//! deterministically (budget tokens, proptest) and over the wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mpsm::core::context::ExecContext;
use mpsm::core::join::anytime::AnytimeToken;
use mpsm::core::Tuple;
use mpsm::exec::{Priority, QuerySpec, Relation, RunCacheConfig, SchedulerConfig, Session};
use mpsm_serve::protocol::{code, read_frame, write_frame, Frame, QueryBody};
use mpsm_serve::{Client, QueryRequest, Server, ServerHandle, ServiceError};
use proptest::prelude::*;

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 32
    }
}

/// `(key, payload)` pairs: every key in `0..n` once, payload = key.
fn closed_form_tuples(n: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut keys: Vec<u64> = (0..n).collect();
    let mut next = lcg(seed);
    for i in (1..keys.len()).rev() {
        keys.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    keys.into_iter().map(|k| (k, k)).collect()
}

/// A served session on an ephemeral port.
fn serve(config: SchedulerConfig) -> ServerHandle {
    let session = Session::with_run_cache(config, RunCacheConfig::default());
    Server::bind("127.0.0.1:0", session).expect("bind").spawn().expect("spawn")
}

#[test]
fn every_frame_type_round_trips_over_a_real_socket() {
    let server = serve(SchedulerConfig::new(2));
    let mut client = Client::connect(server.addr()).expect("connect");

    // Ping / Pong.
    client.ping().expect("ping");

    // Register / Registered, both sides.
    let n = 512u64;
    let (rows, version) = client.register("R", closed_form_tuples(n, 7)).expect("register R");
    assert_eq!(rows, n);
    assert!(version > 0);
    client.register("S", closed_form_tuples(n, 11)).expect("register S");

    // Query / QueryResult with a rows cap: the merge stops as soon as
    // the cap is satisfied, so the reply reports complete (the caller
    // got every row it asked for) while coverage and the per-range
    // histogram say how much of the key space the merge visited.
    let mut request = QueryRequest::new("R", "S");
    request.rows_cap = 8;
    let reply = client.query(&request).expect("query");
    assert_eq!(reply.r_selected, n);
    assert!(reply.complete, "a capped stop is complete on the wire");
    assert!(reply.coverage > 0.0 && reply.coverage <= 1.0);
    assert!(!reply.range_coverage.is_empty(), "per-range histogram rides the reply");
    if let Some(max) = reply.max_payload_sum {
        assert!(max <= 2 * (n - 1), "aggregate over a prefix never exceeds the full join");
    }
    assert_eq!(
        reply.rows,
        (0..8).map(|k| (k, k, k)).collect::<Vec<_>>(),
        "collected rows arrive in key order"
    );

    // Explain / Explained carries the plan (with the service rows).
    let explain = client.explain(&request).expect("explain");
    assert!(explain.contains("Join [P-MPSM"), "{explain}");
    assert!(explain.contains("Anytime [coverage="), "{explain}");
    assert!(explain.contains("Queue [wait ="), "{explain}");
    assert!(explain.contains("shed="), "{explain}");

    // Write / Written lands in the delta and the next query sees it.
    let watermark = client.write("R", vec![(0, 5000)]).expect("write");
    assert_eq!(watermark, 1);
    let reply = client.query(&QueryRequest::new("R", "S")).expect("query after write");
    assert_eq!(reply.max_payload_sum, Some(5000), "append visible to the next query");
    assert_eq!(reply.r_selected, n + 1);

    // Metrics / MetricsReport.
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.submitted >= 3, "query + explain + post-write query were submitted");
    assert_eq!(metrics.completed, metrics.submitted);

    server.shutdown();
}

#[test]
fn malformed_frames_draw_errors_without_killing_the_connection() {
    let server = serve(SchedulerConfig::new(2));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    let expect_error = |stream: &mut TcpStream, expected: u16, why: &str| {
        let frame = read_frame(stream).expect("read").expect("open").expect("decodes");
        match frame {
            Frame::Error { code, .. } => assert_eq!(code, expected, "{why}"),
            other => panic!("{why}: expected an Error frame, got {other:?}"),
        }
    };

    // An unknown tag inside a well-framed body.
    stream.write_all(&1u32.to_le_bytes()).expect("len");
    stream.write_all(&[0x42]).expect("tag");
    expect_error(&mut stream, code::MALFORMED, "unknown tag");

    // A truncated Register body.
    let mut body = vec![0x02];
    body.extend_from_slice(&100u32.to_le_bytes());
    stream.write_all(&(body.len() as u32).to_le_bytes()).expect("len");
    stream.write_all(&body).expect("body");
    expect_error(&mut stream, code::MALFORMED, "truncated body");

    // A well-formed server-tagged frame is refused, not served.
    write_frame(&mut stream, &Frame::Pong).expect("write");
    expect_error(&mut stream, code::UNSUPPORTED, "server frame from a client");

    // A query for relations that don't exist.
    write_frame(
        &mut stream,
        &Frame::Query(QueryBody {
            r: "ghost".to_string(),
            s: "ghost".to_string(),
            deadline_micros: 0,
            priority: 1,
            rows_cap: 0,
        }),
    )
    .expect("write");
    expect_error(&mut stream, code::UNKNOWN_RELATION, "unknown relation");

    // The connection survived all four: a valid Ping still answers.
    write_frame(&mut stream, &Frame::Ping).expect("write");
    let frame = read_frame(&mut stream).expect("read").expect("open").expect("decodes");
    assert_eq!(frame, Frame::Pong, "connection must survive malformed frames");

    // An oversized length prefix is unrecoverable: the server closes.
    stream.write_all(&u32::MAX.to_le_bytes()).expect("len");
    let mut probe = [0u8; 1];
    let closed = match stream.read(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(_) => true,
    };
    assert!(closed, "an unsyncable stream must be dropped");

    server.shutdown();
}

#[test]
fn sla_rejections_surface_as_typed_error_codes() {
    let server = serve(SchedulerConfig::new(2).min_feasible_deadline(Duration::from_millis(1)));
    let mut client = Client::connect(server.addr()).expect("connect");
    client.register("R", closed_form_tuples(64, 3)).expect("register R");
    client.register("S", closed_form_tuples(64, 5)).expect("register S");

    let mut request = QueryRequest::new("R", "S");
    request.deadline_micros = 10; // below the 1 ms floor
    match client.query(&request) {
        Err(ServiceError::Server { code, .. }) => assert_eq!(code, code::INFEASIBLE),
        other => panic!("expected an INFEASIBLE error, got {other:?}"),
    }
    // The connection is still usable and a feasible deadline runs.
    request.deadline_micros = 60_000_000;
    let reply = client.query(&request).expect("feasible deadline");
    assert!(reply.complete);

    server.shutdown();
}

#[test]
fn deadline_hit_over_the_wire_returns_a_partial_prefix() {
    // Deterministic over the wire is impossible (wall clocks), so run
    // the loop the bench uses: descend the deadline until a partial
    // arrives, then check the prefix property. The deterministic
    // version of the same contract is the proptest below.
    let n = 1u64 << 14;
    let server = serve(SchedulerConfig::new(2));
    let mut client = Client::connect(server.addr()).expect("connect");
    client.register("R", closed_form_tuples(n, 7)).expect("register R");
    client.register("S", closed_form_tuples(n, 9)).expect("register S");

    let mut full_req = QueryRequest::new("R", "S");
    full_req.rows_cap = n as u32;
    let full = client.query(&full_req).expect("full query");
    assert!(full.complete);
    assert_eq!(full.rows.len(), n as usize);

    // The 1 us floor guarantees termination: by the time the
    // coordinator pops a 1 us-deadline query it is already expired
    // (dispatch alone takes longer), which yields an empty partial —
    // the prefix property holds for the empty prefix too.
    let mut deadline_micros = 2_000u64;
    let mut partial = None;
    for _ in 0..40 {
        let mut req = full_req.clone();
        req.deadline_micros = deadline_micros;
        let reply = client.query(&req).expect("deadline query");
        if !reply.complete {
            partial = Some(reply);
            break;
        }
        if deadline_micros == 1 {
            break;
        }
        deadline_micros = ((deadline_micros * 6) / 10).max(1);
    }
    let partial = partial.expect("some deadline must interrupt the merge");
    assert!(partial.coverage < 1.0);
    assert_eq!(
        partial.rows.as_slice(),
        &full.rows[..partial.rows.len()],
        "partial rows must be a key-order prefix of the full join"
    );
    if let Some(m) = partial.max_payload_sum {
        assert!(m <= full.max_payload_sum.expect("full join non-empty"));
    }

    server.shutdown();
}

#[test]
fn concurrent_wire_clients_agree_on_the_answer() {
    let n = 2048u64;
    let server = serve(SchedulerConfig::new(2).max_in_flight(2).queue_capacity(64));
    let mut setup = Client::connect(server.addr()).expect("connect");
    setup.register("R", closed_form_tuples(n, 13)).expect("register R");
    setup.register("S", closed_form_tuples(n, 17)).expect("register S");

    let addr = server.addr();
    std::thread::scope(|scope| {
        for i in 0..6 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut request = QueryRequest::new("R", "S");
                request.priority = (i % 3) as u8;
                for _ in 0..4 {
                    let reply = client.query(&request).expect("query");
                    assert_eq!(reply.max_payload_sum, Some(2 * (n - 1)));
                }
            });
        }
    });

    server.shutdown();
}

/// Deterministic anytime contract, in-process (budget tokens make the
/// interruption point exact): coverage is monotone non-decreasing in
/// the budget and every partial's rows are a key-order prefix of the
/// full join's.
fn spec_for(r: &Arc<Relation>, s: &Arc<Relation>, cap: usize) -> QuerySpec {
    QuerySpec::join(r, s).priority(Priority::Normal).collect_rows(cap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn anytime_coverage_is_monotone_and_rows_are_a_prefix(
        r_keys in proptest::collection::vec(0u64..400, 1..1200),
        s_keys in proptest::collection::vec(0u64..400, 1..1200),
        threads in 1usize..4,
    ) {
        let tuples = |keys: &[u64]| -> Vec<Tuple> {
            keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
        };
        let r = Arc::new(Relation::new("R", tuples(&r_keys)));
        let s = Arc::new(Relation::new("S", tuples(&s_keys)));
        let cx = ExecContext::flat(threads);
        let cap = r_keys.len() * s_keys.len();

        let full = mpsm::exec::paper_query_anytime(
            &cx,
            &spec_for(&r, &s, cap),
            &AnytimeToken::never(),
        );
        let full_rows = full.rows.clone().expect("rows collected");
        prop_assert!(full.plan.anytime.as_ref().expect("anytime row").complete);

        let mut last_coverage = -1.0f64;
        for budget in 0..6u64 {
            let out = mpsm::exec::paper_query_anytime(
                &cx,
                &spec_for(&r, &s, cap),
                &AnytimeToken::budget(budget),
            );
            let info = out.plan.anytime.as_ref().expect("anytime row").clone();
            prop_assert!(
                info.coverage >= last_coverage,
                "coverage {} dropped below {} at budget {}",
                info.coverage,
                last_coverage,
                budget
            );
            last_coverage = info.coverage;
            let rows = out.rows.expect("rows collected");
            prop_assert!(rows.len() <= full_rows.len());
            prop_assert_eq!(
                rows.as_slice(),
                &full_rows[..rows.len()],
                "budget {}: partial rows must be a key-order prefix",
                budget
            );
            if info.complete {
                prop_assert_eq!(rows.len(), full_rows.len());
                prop_assert_eq!(out.max_payload_sum, full.max_payload_sum);
            }
        }
    }
}
