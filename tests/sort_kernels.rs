//! Cross-kernel equivalence for the sort-kernel registry.
//!
//! Every [`SortKernel`] — through every block size and both prefetch
//! settings — must produce exactly what `three_phase_sort_naive`
//! produces: the same key order and the same multiset of
//! `(key, payload)` pairs (the kernels are not stable, so payload
//! *order* within a key group may differ, but no tuple may be dropped,
//! duplicated, or invented). The inputs deliberately straddle every
//! dispatch boundary (insertion cutoff 16, bitonic blocks 16–128, the
//! exact-network limit 128, the cache-resident recursion threshold
//! 2048) and include the adversarial distributions that broke earlier
//! drafts: all-equal keys, keys at `u64::MAX` (the bitonic padding
//! sentinel), presorted, reversed, and heavily skewed domains.

use mpsm::core::sort::bitonic::bitonic_sort_with;
use mpsm::core::sort::tuning::BLOCK_CANDIDATES;
use mpsm::core::sort::{
    three_phase_sort_naive, three_phase_sort_tuned, SortKernel, SortScratch, SortTuning,
};
use mpsm::core::tuple::is_key_sorted;
use mpsm::core::Tuple;
use proptest::prelude::*;

/// Tuples with distinct payloads so multiset comparison catches any
/// dropped or duplicated element.
fn tuples(keys: &[u64]) -> Vec<Tuple> {
    keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
}

fn pairs(tuples: &[Tuple]) -> Vec<(u64, u64)> {
    tuples.iter().map(|t| (t.key, t.payload)).collect()
}

/// Sort `keys` with one tuned kernel and check it against the naive
/// reference: keys identically ordered, `(key, payload)` multiset
/// identical.
fn check_kernel(keys: &[u64], tuning: SortTuning) -> Result<(), String> {
    let mut expected = tuples(keys);
    three_phase_sort_naive(&mut expected);

    let mut got = tuples(keys);
    let mut scratch = SortScratch::default();
    three_phase_sort_tuned(&mut got, &tuning, &mut scratch);

    if !is_key_sorted(&got) {
        return Err(format!("{}: output not key-sorted (n={})", tuning.describe(), keys.len()));
    }
    let got_keys: Vec<u64> = got.iter().map(|t| t.key).collect();
    let expected_keys: Vec<u64> = expected.iter().map(|t| t.key).collect();
    if got_keys != expected_keys {
        return Err(format!("{}: key order diverges (n={})", tuning.describe(), keys.len()));
    }
    let mut got_pairs = pairs(&got);
    let mut expected_pairs = pairs(&expected);
    got_pairs.sort_unstable();
    expected_pairs.sort_unstable();
    if got_pairs != expected_pairs {
        return Err(format!(
            "{}: (key, payload) multiset diverges (n={}) — tuples dropped, duplicated, or \
             invented",
            tuning.describe(),
            keys.len()
        ));
    }
    Ok(())
}

/// Run every kernel × a spread of block sizes × both prefetch settings
/// over one input.
fn check_all_kernels(keys: &[u64]) -> Result<(), String> {
    for kernel in SortKernel::ALL {
        for block in [16, 64, 128] {
            for prefetch in [false, true] {
                check_kernel(keys, SortTuning::new(kernel, block).with_prefetch(prefetch))?;
            }
        }
    }
    Ok(())
}

/// The sizes where dispatch changes shape: around the insertion cutoff
/// (16), the block candidates (16/32/64/128), the exact-network limit
/// (128), powers of two vs. padded non-powers, and the cache-resident
/// recursion threshold (2048).
const BOUNDARY_SIZES: [usize; 22] = [
    0, 1, 2, 3, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 200, 255, 256, 2047, 2048, 2049,
];

/// Deterministic key generators indexed by `dist`; `seed` varies the
/// pseudo-random ones.
fn keys_for(dist: usize, n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    match dist % 6 {
        // Uniform over the full u64 domain.
        0 => (0..n).map(|_| next()).collect(),
        // All keys equal (and huge): every bucket collapses.
        1 => vec![u64::MAX - (seed % 3); n],
        // Keys at/near u64::MAX — collides with the bitonic padding
        // sentinel if the kernel ever confuses pads with real tuples.
        2 => (0..n).map(|i| u64::MAX - (i as u64 % 2)).collect(),
        // Presorted.
        3 => (0..n).map(|i| i as u64 * 37).collect(),
        // Reverse-sorted.
        4 => (0..n).map(|i| (n - i) as u64 * 37).collect(),
        // Zipf-flavored skew: exponentially spread magnitudes, so a few
        // buckets hold most tuples at every radix level.
        5 => (0..n).map(|_| 1u64 << (next() % 60)).collect(),
        _ => unreachable!(),
    }
}

#[test]
fn every_kernel_matches_naive_at_every_boundary_size() {
    for n in BOUNDARY_SIZES {
        for dist in 0..6 {
            let keys = keys_for(dist, n, 0x5EED_0007 + dist as u64);
            if let Err(msg) = check_all_kernels(&keys) {
                panic!("dist {dist}, n {n}: {msg}");
            }
        }
    }
}

/// Regression for the padding bug: `bitonic_sort_with` pads non-power-
/// of-two inputs above the exact-network limit with `(u64::MAX,
/// u64::MAX)` sentinels. Real tuples whose key *and* payload are
/// `u64::MAX` are indistinguishable from those pads by value, so the
/// unpad step must count positions, not match values. This input mixes
/// genuine `(u64::MAX, u64::MAX)` tuples with distinct-payload
/// `u64::MAX` keys at a size (200) that forces the padded path.
#[test]
fn padded_bitonic_keeps_real_u64_max_tuples() {
    let n = 200; // > 128 (exact-network limit), not a power of two.
    let mut data: Vec<Tuple> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                Tuple::new(u64::MAX, u64::MAX) // identical to the pad sentinel
            } else {
                Tuple::new(u64::MAX - (i as u64 % 2), i as u64)
            }
        })
        .collect();
    let mut expected = pairs(&data);
    expected.sort_unstable();

    let mut scratch = SortScratch::default();
    bitonic_sort_with(&mut data, &mut scratch);

    assert_eq!(data.len(), n, "padding must not change the tuple count");
    assert!(is_key_sorted(&data));
    let mut got = pairs(&data);
    got.sort_unstable();
    assert_eq!(got, expected, "sentinel-valued real tuples must survive the pad/unpad cycle");
}

/// Same property through the full tuned entry point: a run dominated by
/// `u64::MAX` keys, sized to recurse through the radix pass and finish
/// in padded bitonic leaves.
#[test]
fn tuned_sort_survives_a_max_key_heavy_run() {
    let keys: Vec<u64> =
        (0..3000).map(|i| if i % 7 == 0 { u64::MAX } else { u64::MAX - (i as u64 % 5) }).collect();
    check_all_kernels(&keys).unwrap();
}

/// Every auto-tune sweep candidate block size stays correct at sizes
/// just off the block boundary.
#[test]
fn all_block_candidates_sort_boundary_straddling_runs() {
    for &block in BLOCK_CANDIDATES.iter() {
        for n in [block - 1, block, block + 1, 2 * block + 1] {
            let keys = keys_for(0, n, block as u64);
            for kernel in SortKernel::ALL {
                check_kernel(&keys, SortTuning::new(kernel, block))
                    .unwrap_or_else(|msg| panic!("block {block}, n {n}: {msg}"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernels_match_naive_on_arbitrary_keys(
        keys in proptest::collection::vec(any::<u64>(), 0..2600),
        kernel_idx in 0usize..3,
        block_idx in 0usize..4,
        prefetch in any::<bool>(),
    ) {
        let kernel = SortKernel::ALL[kernel_idx];
        let block = BLOCK_CANDIDATES[block_idx];
        let tuning = SortTuning::new(kernel, block).with_prefetch(prefetch);
        if let Err(msg) = check_kernel(&keys, tuning) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn kernels_match_naive_on_adversarial_distributions(
        dist in 0usize..6,
        n in 1usize..2600,
        seed in any::<u64>(),
        kernel_idx in 0usize..3,
    ) {
        let keys = keys_for(dist, n, seed);
        let kernel = SortKernel::ALL[kernel_idx];
        // Small block (16) maximizes leaf-dispatch traffic; prefetch on
        // exercises the hinted permutation pass.
        for tuning in [SortTuning::new(kernel, 16), SortTuning::new(kernel, 64).with_prefetch(true)] {
            if let Err(msg) = check_kernel(&keys, tuning) {
                prop_assert!(false, "dist {}, n {}: {}", dist, n, msg);
            }
        }
    }
}
